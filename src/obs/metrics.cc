#include "obs/metrics.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace ppdp::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  PPDP_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    PPDP_CHECK(bounds_[i] > bounds_[i - 1]) << "bucket bounds must be strictly increasing";
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  ++counts_[bucket];
  sum_ += value;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  if (samples_.size() < kExactSampleCap) samples_.push_back(value);
  ++count_;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

std::vector<uint64_t> Histogram::CumulativeBucketCounts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<uint64_t> cumulative(counts_.size(), 0);
  uint64_t running = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    running += counts_[i];
    cumulative[i] = running;
  }
  return cumulative;
}

double Histogram::ApproxQuantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  return BucketQuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (count_ <= samples_.size()) {
    // Exact: type-7 (linear interpolation between closest ranks) over the
    // retained raw observations. A single sample or all-equal samples
    // collapse every quantile to that value.
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    double position = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(position);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double within = position - static_cast<double>(lo);
    return sorted[lo] + within * (sorted[hi] - sorted[lo]);
  }
  return BucketQuantileLocked(q);
}

double Histogram::BucketQuantileLocked(double q) const {
  // Interpolate within the covering bucket (clamped to observed extremes).
  double rank = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    double lo = b == 0 ? std::min(min_, bounds_[0]) : bounds_[b - 1];
    double hi = b < bounds_.size() ? bounds_[b] : max_;
    if (static_cast<double>(seen + counts_[b]) >= rank) {
      double within = (rank - static_cast<double>(seen)) / static_cast<double>(counts_[b]);
      return std::clamp(lo + within * (hi - lo), min_, max_);
    }
    seen += counts_[b];
  }
  return max_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return QuantileLocked(q);
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  samples_.clear();
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::string SanitizeMetricName(std::string_view name) {
  auto valid = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') return true;
    return !first && c >= '0' && c <= '9';
  };
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty()) return "_";
  if (!valid(name[0], /*first=*/true) && valid(name[0], /*first=*/false)) out += '_';
  for (size_t i = 0; i < name.size(); ++i) {
    out += valid(name[i], /*first=*/false) ? name[i] : '_';
  }
  return out;
}

const std::vector<double>& DefaultLatencyBoundsSeconds() {
  static const std::vector<double> bounds = {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
                                             3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0};
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // intentionally leaked
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? DefaultLatencyBoundsSeconds() : bounds);
  }
  return *slot;
}

Table MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Table table({"metric", "type", "count", "value", "mean", "p50", "p95", "p99", "max"});
  for (const auto& [name, c] : counters_) {
    table.AddRow({name, "counter", std::to_string(c->value()), std::to_string(c->value()), "", "",
                  "", "", ""});
  }
  for (const auto& [name, g] : gauges_) {
    table.AddRow({name, "gauge", "", Table::FormatDouble(g->value(), 6), "", "", "", "", ""});
  }
  for (const auto& [name, h] : histograms_) {
    table.AddRow({name, "histogram", std::to_string(h->count()),
                  Table::FormatDouble(h->sum(), 6), Table::FormatDouble(h->mean(), 6),
                  Table::FormatDouble(h->Quantile(0.5), 6),
                  Table::FormatDouble(h->Quantile(0.95), 6),
                  Table::FormatDouble(h->Quantile(0.99), 6),
                  Table::FormatDouble(h->max(), 6)});
  }
  return table;
}

std::vector<MetricsRegistry::HistogramSummary> MetricsRegistry::HistogramSummaries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSummary> rows;
  rows.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary row;
    row.name = name;
    row.count = h->count();
    row.mean = h->mean();
    row.min = h->min();
    row.max = h->max();
    row.p50 = h->Quantile(0.5);
    row.p95 = h->Quantile(0.95);
    row.p99 = h->Quantile(0.99);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, uint64_t>> rows;
  rows.reserve(counters_.size());
  for (const auto& [name, c] : counters_) rows.emplace_back(name, c->value());
  return rows;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> rows;
  rows.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) rows.emplace_back(name, g->value());
  return rows;
}

namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

namespace {

/// Prometheus sample-value formatting: shortest %g form wide enough to
/// round-trip the counts/bounds this repo emits, with the spec's spellings
/// for the non-finite values.
std::string PromDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

void AppendHelpType(std::string& out, const std::string& name, const std::string& original,
                    const char* type) {
  out += "# HELP " + name + " ppdp metric " + original + "\n";
  out += "# TYPE " + name + " ";
  out += type;
  out += "\n";
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::set<std::string> emitted;
  auto claim = [&emitted](const std::string& name) { return emitted.insert(name).second; };
  for (const auto& [name, c] : counters_) {
    const std::string prom = SanitizeMetricName(name);
    if (!claim(prom)) continue;
    AppendHelpType(out, prom, name, "counter");
    out += prom + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = SanitizeMetricName(name);
    if (!claim(prom)) continue;
    AppendHelpType(out, prom, name, "gauge");
    out += prom + " " + PromDouble(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string prom = SanitizeMetricName(name);
    if (!claim(prom)) continue;
    AppendHelpType(out, prom, name, "histogram");
    const std::vector<double>& bounds = h->bounds();
    // One consistent read: cumulative counts and the matching total. The
    // +Inf bucket is the last cumulative entry, so _count always agrees
    // with the bucket series even if observations land mid-render.
    std::vector<uint64_t> cumulative = h->CumulativeBucketCounts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      out += prom + "_bucket{le=\"" + PromDouble(bounds[i]) + "\"} " +
             std::to_string(cumulative[i]) + "\n";
    }
    const uint64_t total = cumulative.empty() ? 0 : cumulative.back();
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
    out += prom + "_sum " + PromDouble(h->sum()) + "\n";
    out += prom + "_count " + std::to_string(total) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",";
    first = false;
  };
  for (const auto& [name, c] : counters_) {
    comma();
    AppendJsonString(out, name);
    out += ":{\"type\":\"counter\",\"value\":" + std::to_string(c->value()) + "}";
  }
  for (const auto& [name, g] : gauges_) {
    comma();
    AppendJsonString(out, name);
    out += ":{\"type\":\"gauge\",\"value\":" + Table::FormatDouble(g->value(), 9) + "}";
  }
  for (const auto& [name, h] : histograms_) {
    comma();
    AppendJsonString(out, name);
    out += ":{\"type\":\"histogram\",\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + Table::FormatDouble(h->sum(), 9) +
           ",\"p50\":" + Table::FormatDouble(h->Quantile(0.5), 9) +
           ",\"p95\":" + Table::FormatDouble(h->Quantile(0.95), 9) +
           ",\"p99\":" + Table::FormatDouble(h->Quantile(0.99), 9) + ",\"bounds\":[";
    const auto& bounds = h->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i) out += ",";
      out += Table::FormatDouble(bounds[i], 9);
    }
    out += "],\"buckets\":[";
    auto counts = h->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(counts[i]);
    }
    out += "]}";
  }
  out += "}";
  return out;
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  file << ToJson() << "\n";
  if (!file.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

namespace {

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto valid = [](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':') return true;
    return !first && c >= '0' && c <= '9';
  };
  for (size_t i = 0; i < name.size(); ++i) {
    if (!valid(name[i], i == 0)) return false;
  }
  return true;
}

bool ParsePromValue(std::string_view token, double* out) {
  if (token == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token.empty()) return false;
  std::string copy(token);
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || errno == ERANGE) return false;
  *out = value;
  return true;
}

/// Splits a `{...}` label block into (name, value) pairs; false on syntax
/// errors (unterminated strings, bad label names, missing '=').
bool ParseLabels(std::string_view block,
                 std::vector<std::pair<std::string, std::string>>* labels) {
  size_t i = 0;
  while (i < block.size()) {
    size_t eq = block.find('=', i);
    if (eq == std::string_view::npos) return false;
    std::string name(block.substr(i, eq - i));
    if (!IsValidMetricName(name) || name.find(':') != std::string::npos) return false;
    if (eq + 1 >= block.size() || block[eq + 1] != '"') return false;
    std::string value;
    size_t j = eq + 2;
    for (; j < block.size() && block[j] != '"'; ++j) {
      if (block[j] == '\\') {
        if (j + 1 >= block.size()) return false;
        ++j;
      }
      value += block[j];
    }
    if (j >= block.size()) return false;  // unterminated value
    labels->emplace_back(std::move(name), std::move(value));
    i = j + 1;
    if (i < block.size()) {
      if (block[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

/// Per-histogram completeness bookkeeping while scanning samples.
struct HistogramSeries {
  std::vector<double> les;
  std::vector<double> bucket_values;
  bool has_sum = false;
  bool has_count = false;
  double count_value = 0.0;
};

}  // namespace

Status ValidatePrometheusText(std::string_view text) {
  if (text.empty()) return Status::Ok();  // an empty registry is a valid scrape
  if (text.back() != '\n') return Status::InvalidArgument("exposition must end with a newline");

  std::map<std::string, std::string> type_of;     // metric -> declared TYPE
  std::map<std::string, bool> has_help;           // metric -> HELP seen
  std::map<std::string, HistogramSeries> series;  // histogram bookkeeping
  std::vector<std::string> sample_order;          // metrics in first-sample order
  std::string current;                            // metric of the open sample block

  auto fail = [](size_t line_no, const std::string& why) {
    return Status::InvalidArgument("exposition line " + std::to_string(line_no) + ": " + why);
  };

  size_t line_no = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    ++line_no;
    size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      bool is_help = line.rfind("# HELP ", 0) == 0;
      bool is_type = line.rfind("# TYPE ", 0) == 0;
      if (!is_help && !is_type) continue;  // free-form comment
      std::string_view rest = line.substr(7);
      size_t space = rest.find(' ');
      std::string name(rest.substr(0, space));
      if (!IsValidMetricName(name)) return fail(line_no, "bad metric name in comment: " + name);
      if (is_help) {
        if (has_help[name]) return fail(line_no, "duplicate HELP for " + name);
        has_help[name] = true;
      } else {
        std::string type(space == std::string_view::npos ? "" : rest.substr(space + 1));
        if (type != "counter" && type != "gauge" && type != "histogram" && type != "summary" &&
            type != "untyped") {
          return fail(line_no, "unknown TYPE '" + type + "' for " + name);
        }
        if (type_of.count(name)) return fail(line_no, "duplicate TYPE for " + name);
        for (const std::string& seen : sample_order) {
          if (seen == name) return fail(line_no, "TYPE for " + name + " after its samples");
        }
        type_of[name] = type;
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string_view::npos) return fail(line_no, "sample has no value");
    std::string sample_name(line.substr(0, name_end));
    if (!IsValidMetricName(sample_name)) {
      return fail(line_no, "bad sample name: " + sample_name);
    }

    std::vector<std::pair<std::string, std::string>> labels;
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      size_t close = line.find('}', name_end);
      if (close == std::string_view::npos) return fail(line_no, "unterminated label block");
      if (!ParseLabels(line.substr(name_end + 1, close - name_end - 1), &labels)) {
        return fail(line_no, "malformed labels: " + sample_name);
      }
      value_start = close + 1;
    }
    while (value_start < line.size() && line[value_start] == ' ') ++value_start;
    std::string_view value_part = line.substr(value_start);
    size_t value_end = value_part.find(' ');
    double value = 0.0;
    if (!ParsePromValue(value_part.substr(0, value_end), &value)) {
      return fail(line_no, "unparseable value for " + sample_name);
    }
    if (value_end != std::string_view::npos) {
      // Optional timestamp: a (signed) integer of milliseconds.
      std::string_view ts = value_part.substr(value_end + 1);
      double ts_value = 0.0;
      if (!ParsePromValue(ts, &ts_value)) return fail(line_no, "bad timestamp");
    }

    // Resolve the declared metric this sample belongs to: exact name, or a
    // histogram child series (_bucket/_sum/_count).
    std::string metric = sample_name;
    bool is_bucket = false, is_sum = false, is_count = false;
    if (!type_of.count(metric)) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        size_t len = std::char_traits<char>::length(suffix);
        if (sample_name.size() > len &&
            sample_name.compare(sample_name.size() - len, len, suffix) == 0) {
          std::string base = sample_name.substr(0, sample_name.size() - len);
          auto it = type_of.find(base);
          if (it != type_of.end() && (it->second == "histogram" || it->second == "summary")) {
            metric = base;
            is_bucket = suffix[1] == 'b';
            is_sum = suffix[1] == 's';
            is_count = suffix[1] == 'c';
            break;
          }
        }
      }
    }
    if (!type_of.count(metric)) return fail(line_no, "sample without TYPE: " + sample_name);
    if (!has_help[metric]) return fail(line_no, "sample without HELP: " + sample_name);
    const std::string& type = type_of[metric];
    const bool child_series = is_bucket || is_sum || is_count;
    if (type == "histogram" && !child_series) {
      return fail(line_no, "sample name does not match TYPE of " + metric);
    }
    if (child_series && type != "histogram" && type != "summary") {
      return fail(line_no, "child series on non-histogram metric " + metric);
    }

    if (metric != current) {
      for (const std::string& seen : sample_order) {
        if (seen == metric) {
          return fail(line_no, "samples of " + metric + " are not contiguous");
        }
      }
      sample_order.push_back(metric);
      current = metric;
    }

    if (type == "counter" && value < 0.0) return fail(line_no, "negative counter " + metric);
    if (type == "histogram") {
      HistogramSeries& h = series[metric];
      if (is_bucket) {
        double le = 0.0;
        bool found = false;
        for (const auto& [label_name, label_value] : labels) {
          if (label_name != "le") continue;
          if (!ParsePromValue(label_value, &le)) return fail(line_no, "bad le bucket bound");
          found = true;
        }
        if (!found) return fail(line_no, metric + "_bucket without an le label");
        if (!h.les.empty() && !(le > h.les.back())) {
          return fail(line_no, metric + " le bounds are not increasing");
        }
        if (!h.bucket_values.empty() && value < h.bucket_values.back()) {
          return fail(line_no, metric + " bucket counts are not cumulative");
        }
        h.les.push_back(le);
        h.bucket_values.push_back(value);
      } else if (is_sum) {
        h.has_sum = true;
      } else {
        h.has_count = true;
        h.count_value = value;
      }
    }
  }

  for (const auto& [metric, h] : series) {
    if (h.les.empty() || !std::isinf(h.les.back()) || h.les.back() < 0.0) {
      return Status::InvalidArgument("histogram " + metric + " lacks an le=\"+Inf\" bucket");
    }
    if (!h.has_sum || !h.has_count) {
      return Status::InvalidArgument("histogram " + metric + " lacks _sum/_count");
    }
    if (h.count_value != h.bucket_values.back()) {
      return Status::InvalidArgument("histogram " + metric +
                                     " _count disagrees with its +Inf bucket");
    }
  }
  return Status::Ok();
}

}  // namespace ppdp::obs
