#include "obs/recorder.h"

#include <atomic>
#include <csignal>
#include <fstream>
#include <utility>

#include "common/json.h"
#include "common/logging.h"

namespace ppdp::obs {

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // intentionally leaked
  return *recorder;
}

void FlightRecorder::Configure(size_t capacity, LogLevel min_log_level) {
  PPDP_CHECK(capacity > 0) << "flight recorder capacity must be positive";
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  min_log_level_ = min_log_level;
  TrimLocked();
}

size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

LogLevel FlightRecorder::min_log_level() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_log_level_;
}

void FlightRecorder::SetDumpPath(std::string path) {
  std::lock_guard<std::mutex> lock(mutex_);
  dump_path_ = std::move(path);
}

std::string FlightRecorder::dump_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dump_path_;
}

void FlightRecorder::TrimLocked() {
  while (events_.size() > capacity_) events_.pop_front();
}

void FlightRecorder::Record(FlightEvent event) {
  if (event.elapsed_seconds == 0.0) event.elapsed_seconds = MonotonicSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  events_.push_back(std::move(event));
  TrimLocked();
}

void FlightRecorder::RecordLog(const LogRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (record.level < min_log_level_ || record.level >= LogLevel::kOff) return;
  }
  FlightEvent event;
  event.elapsed_seconds = record.elapsed_seconds;
  event.category = "log";
  event.severity = LogLevelName(record.level);
  event.label = std::string(record.file) + ":" + std::to_string(record.line);
  event.message = record.message;
  Record(std::move(event));
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<FlightEvent>(events_.begin(), events_.end());
}

size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  total_recorded_ = 0;
  dumped_ = false;
}

bool FlightRecorder::dumped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dumped_;
}

std::string FlightRecorder::ToJson(std::string_view reason) const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("ppdp.flight.v1"));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doc.Set("capacity", JsonValue::Number(static_cast<double>(capacity_)));
    doc.Set("recorded", JsonValue::Number(static_cast<double>(total_recorded_)));
    doc.Set("dropped",
            JsonValue::Number(static_cast<double>(total_recorded_ - events_.size())));
    doc.Set("reason", JsonValue::String(std::string(reason)));
    JsonValue events = JsonValue::Array();
    for (const FlightEvent& e : events_) {
      JsonValue event = JsonValue::Object();
      event.Set("t", JsonValue::Number(e.elapsed_seconds));
      event.Set("category", JsonValue::String(e.category));
      event.Set("severity", JsonValue::String(e.severity));
      event.Set("label", JsonValue::String(e.label));
      event.Set("message", JsonValue::String(e.message));
      events.Append(std::move(event));
    }
    doc.Set("events", std::move(events));
  }
  return doc.Dump();
}

Status FlightRecorder::Dump(const std::string& path, std::string_view reason) const {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  file << ToJson(reason) << "\n";
  if (!file.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Status FlightRecorder::NoteFatalStatus(Status status, std::string_view origin) {
  if (status.ok()) return status;
  FlightEvent event;
  event.category = "status";
  event.severity = "ERROR";
  event.label = std::string(origin);
  event.message = status.ToString();
  Record(std::move(event));

  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dumped_ && !dump_path_.empty()) {
      dumped_ = true;
      path = dump_path_;
    }
  }
  if (!path.empty()) {
    Status written = Dump(path, "first non-OK status from " + std::string(origin));
    if (written.ok()) {
      PPDP_LOG(WARN) << "flight recorder dumped" << Field("path", path)
                     << Field("origin", std::string(origin));
    } else {
      PPDP_LOG(ERROR) << "flight recorder dump failed" << Field("path", path)
                      << Field("error", written.ToString());
    }
  }
  return status;
}

namespace {

std::atomic<bool> g_dumping_on_signal{false};

void SignalDumpHandler(int signal_number) {
  // Best effort only: one attempt per process, then fall through to the
  // default disposition so the crash itself is preserved.
  if (!g_dumping_on_signal.exchange(true)) {
    FlightRecorder::Global().DumpOnFatalSignal(signal_number);
  }
  std::signal(signal_number, SIG_DFL);
  std::raise(signal_number);
}

}  // namespace

void FlightRecorder::DumpOnFatalSignal(int signal_number) {
  std::string path;
  {
    // try_lock: the signal may have interrupted a thread that holds the
    // recorder mutex; a blocking lock would deadlock the dying process.
    if (!mutex_.try_lock()) return;
    path = dump_path_;
    dumped_ = true;
    mutex_.unlock();
  }
  if (path.empty()) return;
  FlightEvent event;
  event.category = "status";
  event.severity = "ERROR";
  event.label = "signal";
  event.message = "fatal signal " + std::to_string(signal_number);
  Record(std::move(event));
  (void)Dump(path, "fatal signal " + std::to_string(signal_number));
}

void FlightRecorder::InstallSignalDump() {
  static bool installed = [] {
    for (int sig : {SIGSEGV, SIGABRT, SIGFPE, SIGILL, SIGBUS}) {
      std::signal(sig, SignalDumpHandler);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace ppdp::obs
