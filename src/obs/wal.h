#ifndef PPDP_OBS_WAL_H_
#define PPDP_OBS_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ppdp::obs {

/// One recovered privacy-ledger spend: the epsilon a tenant was charged (or
/// was about to be charged when the process died — charge-ahead records
/// replay as spent either way, so a crash can never under-count).
struct WalSpend {
  uint64_t seq = 0;
  std::string tenant;
  std::string label;
  std::string mechanism;
  double epsilon = 0.0;  ///< per-invocation ε
  uint64_t invocations = 1;

  double total_epsilon() const { return epsilon * static_cast<double>(invocations); }
};

/// What a WAL scan found: the surviving spends (aborts already applied, in
/// append order) plus accounting of how the tail was treated. Prefix
/// semantics: the scan stops at the first torn or checksum-corrupt record
/// and everything from that offset on is dropped — a WAL writer that keeps
/// appending after a bad write would otherwise leave valid-looking records
/// stranded behind garbage, which is why appends fail-stop (see
/// LedgerWal::Append*) the moment a write goes bad.
struct WalRecovery {
  std::vector<WalSpend> spends;
  uint64_t records_read = 0;    ///< valid records (spends + aborts)
  uint64_t aborts_applied = 0;  ///< spend records cancelled by an abort
  uint64_t valid_bytes = 0;     ///< offset of the first invalid byte
  uint64_t truncated_bytes = 0; ///< torn/corrupt tail dropped by recovery
  bool tail_truncated = false;
};

/// Append-only, checksummed write-ahead log for privacy-ledger spends — the
/// durability layer that makes per-tenant ε budgets survive a crash or
/// restart of the serving daemon.
///
/// Charge-ahead protocol: the caller appends a spend record BEFORE asking
/// the ledger to admit it. If the ledger then rejects the spend, an abort
/// record cancels it; if the process dies in between, recovery replays the
/// spend as spent. The failure mode is therefore always conservative: a
/// crash can only over-count spent ε, never under-count it.
///
/// On-disk format (all integers little-endian):
///   header   "PPDPWAL1" (8 bytes)
///   record   u32 payload_len | u64 fnv1a64(payload) | payload
///   payload  u8 type (1 = spend, 2 = abort) | u64 seq | type-specific
/// The checksum is the same FNV-1a 64 scheme the IoT channel and run-report
/// digests use. Recovery truncates the file at the first torn or corrupt
/// record, so a half-written tail never poisons the next boot.
///
/// Fail-stop contract: once a write or fsync fails (for real, or via the
/// `ledger.wal.append` / `ledger.wal.fsync` fault points), the WAL poisons
/// itself — every later append fails — because a log that cannot promise
/// durability must stop admitting spends rather than silently leak budget.
/// Thread-safe; one mutex serializes appends.
class LedgerWal {
 public:
  enum class SyncPolicy {
    kAlways,  ///< fsync after every append (durability = every admitted spend)
    kBatch,   ///< fsync every Options::batch_bytes; crash may lose the tail
  };

  struct Options {
    std::string path;
    SyncPolicy sync = SyncPolicy::kAlways;
    /// kBatch: unsynced bytes allowed before the next append fsyncs.
    size_t batch_bytes = 1 << 16;
  };

  /// Opens (creating if absent) the WAL at `options.path`: scans existing
  /// records, truncates any torn/corrupt tail, and positions for append.
  /// The recovered spends are available via recovery(). Fails with
  /// kDataLoss when the file exists but does not start with the WAL magic
  /// (it is not ours to truncate), kUnavailable on IO errors.
  static Result<std::unique_ptr<LedgerWal>> Open(const Options& options);
  ~LedgerWal();
  LedgerWal(const LedgerWal&) = delete;
  LedgerWal& operator=(const LedgerWal&) = delete;

  /// Appends a spend record and (policy permitting) syncs it. On success
  /// `*seq_out` names the record so a rejection can be aborted. Fails
  /// kUnavailable when the log is poisoned or the write/fsync fails — the
  /// caller must refuse the spend (503), never admit it unlogged.
  Status AppendSpend(std::string_view tenant, std::string_view label,
                     std::string_view mechanism, double epsilon, uint64_t invocations,
                     uint64_t* seq_out);

  /// Cancels a previously appended spend (the ledger rejected it). Best
  /// effort: if this append fails, recovery replays the spend as spent —
  /// conservative by design.
  Status AppendAbort(uint64_t seq);

  /// Forces an fsync of everything appended so far (kBatch shutdown path).
  Status Sync();

  /// What Open() recovered from the existing file.
  const WalRecovery& recovery() const { return recovery_; }
  const std::string& path() const { return options_.path; }
  SyncPolicy sync_policy() const { return options_.sync; }
  bool poisoned() const;
  uint64_t appends() const;
  uint64_t syncs() const;

  /// Read-only scan of a WAL file (what Open would recover) without
  /// truncating anything — tests and offline tooling. A missing file is an
  /// empty recovery, not an error.
  static Result<WalRecovery> Scan(const std::string& path);

 private:
  LedgerWal(Options options, int fd, WalRecovery recovery, uint64_t next_seq);

  /// Serializes, checksums, writes, and policy-syncs one payload.
  Status AppendRecord(const std::string& payload);

  Options options_;
  WalRecovery recovery_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  uint64_t next_seq_ = 1;
  bool poisoned_ = false;
  size_t unsynced_bytes_ = 0;
  uint64_t appends_ = 0;
  uint64_t syncs_ = 0;
};

/// Parses "always" / "batch" (the --ledger_sync flag values).
Result<LedgerWal::SyncPolicy> ParseSyncPolicy(const std::string& name);

}  // namespace ppdp::obs

#endif  // PPDP_OBS_WAL_H_
