#include "obs/report.h"

#include <ctime>
#include <fstream>

#include "obs/log.h"
#include "obs/recorder.h"

namespace ppdp::obs {

Result<uint64_t> FileDigestFnv1a(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::NotFound("cannot open " + path + " for digesting");
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64-bit offset basis
  char buffer[4096];
  while (file.read(buffer, sizeof(buffer)) || file.gcount() > 0) {
    std::streamsize n = file.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buffer[i]);
      h *= 0x100000001B3ULL;  // FNV prime
    }
    if (!file) break;
  }
  return h;
}

std::string DigestToHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

const char* RunReport::SchemaTag() { return "ppdp.bench.v1"; }

RunReport::BuildInfo CurrentBuildInfo() {
  RunReport::BuildInfo info;
#if defined(__VERSION__)
  info.compiler = __VERSION__;
#else
  info.compiler = "unknown";
#endif
#if defined(NDEBUG)
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
#if defined(__linux__)
  info.platform = "linux";
#elif defined(__APPLE__)
  info.platform = "darwin";
#else
  info.platform = "unknown";
#endif
  info.platform += sizeof(void*) == 8 ? "-64bit" : "-32bit";
  info.cxx_standard = static_cast<long>(__cplusplus);
  return info;
}

double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

void CollectGlobalTelemetry(RunReport* report) {
  report->build = CurrentBuildInfo();
  report->phases = TraceRecorder::Global().PhaseStatsSorted();
  report->histograms = MetricsRegistry::Global().HistogramSummaries();
  report->counters = MetricsRegistry::Global().CounterValues();

  FlightRecorder& recorder = FlightRecorder::Global();
  report->flight.recorded = recorder.total_recorded();
  report->flight.retained = recorder.size();
  report->flight.dumped = recorder.dumped();

  report->wall_seconds = MonotonicSeconds();
  report->cpu_seconds = ProcessCpuSeconds();
}

JsonValue RunReport::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String(SchemaTag()));
  doc.Set("schema_version", JsonValue::Number(kSchemaVersion));
  doc.Set("name", JsonValue::String(name));
  doc.Set("binary", JsonValue::String(binary));

  JsonValue flag_obj = JsonValue::Object();
  for (const auto& [key, value] : flags) flag_obj.Set(key, JsonValue::String(value));
  doc.Set("flags", std::move(flag_obj));
  doc.Set("seed", JsonValue::Number(static_cast<double>(seed)));
  doc.Set("threads", JsonValue::Number(threads));
  doc.Set("scale", JsonValue::Number(scale));

  JsonValue build_obj = JsonValue::Object();
  build_obj.Set("compiler", JsonValue::String(build.compiler));
  build_obj.Set("build_type", JsonValue::String(build.build_type));
  build_obj.Set("platform", JsonValue::String(build.platform));
  build_obj.Set("cxx_standard", JsonValue::Number(static_cast<double>(build.cxx_standard)));
  doc.Set("build", std::move(build_obj));

  JsonValue fault_obj = JsonValue::Object();
  fault_obj.Set("armed", JsonValue::Bool(fault.armed));
  fault_obj.Set("seed", JsonValue::Number(static_cast<double>(fault.seed)));
  fault_obj.Set("rate", JsonValue::Number(fault.rate));
  JsonValue rates_obj = JsonValue::Object();
  for (const auto& [point, rate] : fault.point_rates) {
    rates_obj.Set(point, JsonValue::Number(rate));
  }
  fault_obj.Set("point_rates", std::move(rates_obj));
  doc.Set("fault", std::move(fault_obj));

  JsonValue phase_array = JsonValue::Array();
  for (const TraceRecorder::PhaseStats& p : phases) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue::String(p.name));
    row.Set("count", JsonValue::Number(static_cast<double>(p.count)));
    row.Set("wall_ms_total", JsonValue::Number(p.wall_ms_total));
    row.Set("wall_ms_mean", JsonValue::Number(p.wall_ms_mean));
    row.Set("wall_ms_min", JsonValue::Number(p.wall_ms_min));
    row.Set("wall_ms_max", JsonValue::Number(p.wall_ms_max));
    row.Set("cpu_ms_total", JsonValue::Number(p.cpu_ms_total));
    row.Set("alloc_bytes_total", JsonValue::Number(static_cast<double>(p.alloc_bytes_total)));
    row.Set("rss_peak_bytes", JsonValue::Number(static_cast<double>(p.rss_peak_bytes)));
    phase_array.Append(std::move(row));
  }
  doc.Set("phases", std::move(phase_array));

  JsonValue histo_array = JsonValue::Array();
  for (const MetricsRegistry::HistogramSummary& h : histograms) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue::String(h.name));
    row.Set("count", JsonValue::Number(static_cast<double>(h.count)));
    row.Set("mean", JsonValue::Number(h.mean));
    row.Set("min", JsonValue::Number(h.min));
    row.Set("max", JsonValue::Number(h.max));
    row.Set("p50", JsonValue::Number(h.p50));
    row.Set("p95", JsonValue::Number(h.p95));
    row.Set("p99", JsonValue::Number(h.p99));
    histo_array.Append(std::move(row));
  }
  doc.Set("histograms", std::move(histo_array));

  JsonValue counter_obj = JsonValue::Object();
  for (const auto& [counter_name, value] : counters) {
    counter_obj.Set(counter_name, JsonValue::Number(static_cast<double>(value)));
  }
  doc.Set("counters", std::move(counter_obj));

  JsonValue ledger_array = JsonValue::Array();
  for (const LedgerAudit& audit : ledgers) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue::String(audit.name));
    row.Set("budget", JsonValue::Number(audit.budget.budget));
    row.Set("spent", JsonValue::Number(audit.budget.spent));
    row.Set("remaining", JsonValue::Number(audit.budget.remaining));
    row.Set("rejected", JsonValue::Number(static_cast<double>(audit.budget.rejected)));
    JsonValue entries = JsonValue::Array();
    for (const PrivacyLedger::Entry& entry : audit.entries) {
      JsonValue e = JsonValue::Object();
      e.Set("label", JsonValue::String(entry.label));
      e.Set("mechanism", JsonValue::String(entry.mechanism));
      e.Set("calls", JsonValue::Number(static_cast<double>(entry.calls)));
      e.Set("epsilon", JsonValue::Number(entry.total_epsilon));
      entries.Append(std::move(e));
    }
    row.Set("entries", std::move(entries));
    ledger_array.Append(std::move(row));
  }
  doc.Set("ledgers", std::move(ledger_array));

  JsonValue output_array = JsonValue::Array();
  for (const OutputDigest& out : outputs) {
    JsonValue row = JsonValue::Object();
    row.Set("name", JsonValue::String(out.name));
    row.Set("path", JsonValue::String(out.path));
    row.Set("bytes", JsonValue::Number(static_cast<double>(out.bytes)));
    row.Set("fnv1a", JsonValue::String(out.fnv1a));
    output_array.Append(std::move(row));
  }
  doc.Set("outputs", std::move(output_array));

  doc.Set("wall_seconds", JsonValue::Number(wall_seconds));
  doc.Set("cpu_seconds", JsonValue::Number(cpu_seconds));

  JsonValue flight_obj = JsonValue::Object();
  flight_obj.Set("recorded", JsonValue::Number(static_cast<double>(flight.recorded)));
  flight_obj.Set("retained", JsonValue::Number(static_cast<double>(flight.retained)));
  flight_obj.Set("dumped", JsonValue::Bool(flight.dumped));
  doc.Set("flight", std::move(flight_obj));

  if (profile.enabled) {
    JsonValue profile_obj = JsonValue::Object();
    profile_obj.Set("enabled", JsonValue::Bool(true));
    profile_obj.Set("hz", JsonValue::Number(profile.hz));
    profile_obj.Set("path", JsonValue::String(profile.path));
    profile_obj.Set("folded_path", JsonValue::String(profile.folded_path));
    profile_obj.Set("samples", JsonValue::Number(static_cast<double>(profile.samples)));
    profile_obj.Set("dropped", JsonValue::Number(static_cast<double>(profile.dropped)));
    doc.Set("profile", std::move(profile_obj));
  }

  if (!slos.empty()) {
    JsonValue slo_array = JsonValue::Array();
    for (const SloAttainment& row : slos) {
      JsonValue row_json = JsonValue::Object();
      row_json.Set("rule", JsonValue::String(row.rule));
      row_json.Set("signal", JsonValue::String(row.signal));
      if (!row.tenant.empty()) row_json.Set("tenant", JsonValue::String(row.tenant));
      row_json.Set("objective", JsonValue::Number(row.objective));
      row_json.Set("attained", JsonValue::Number(row.attained));
      row_json.Set("met", JsonValue::Bool(row.met));
      row_json.Set("events", JsonValue::Number(static_cast<double>(row.events)));
      slo_array.Append(std::move(row_json));
    }
    doc.Set("slos", std::move(slo_array));
  }
  return doc;
}

Status RunReport::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  file << ToJson().Dump() << "\n";
  if (!file.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

Result<RunReport> RunReport::FromJson(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("run report must be a JSON object");
  if (doc.GetStringOr("schema", "") != SchemaTag()) {
    return Status::InvalidArgument("not a " + std::string(SchemaTag()) +
                                   " document (schema=\"" + doc.GetStringOr("schema", "") +
                                   "\")");
  }
  RunReport report;
  report.name = doc.GetStringOr("name", "");
  report.binary = doc.GetStringOr("binary", "");
  report.seed = static_cast<uint64_t>(doc.GetNumberOr("seed", 0));
  report.threads = static_cast<int>(doc.GetNumberOr("threads", 0));
  report.scale = doc.GetNumberOr("scale", 1.0);
  report.wall_seconds = doc.GetNumberOr("wall_seconds", 0.0);
  report.cpu_seconds = doc.GetNumberOr("cpu_seconds", 0.0);

  if (const JsonValue* flags = doc.Find("flags"); flags && flags->is_object()) {
    for (const auto& [key, value] : flags->members()) {
      if (value.is_string()) report.flags[key] = value.as_string();
    }
  }
  if (const JsonValue* build = doc.Find("build"); build && build->is_object()) {
    report.build.compiler = build->GetStringOr("compiler", "");
    report.build.build_type = build->GetStringOr("build_type", "");
    report.build.platform = build->GetStringOr("platform", "");
    report.build.cxx_standard = static_cast<long>(build->GetNumberOr("cxx_standard", 0));
  }
  if (const JsonValue* fault = doc.Find("fault"); fault && fault->is_object()) {
    report.fault.armed = fault->GetBoolOr("armed", false);
    report.fault.seed = static_cast<uint64_t>(fault->GetNumberOr("seed", 0));
    report.fault.rate = fault->GetNumberOr("rate", 0.0);
    if (const JsonValue* rates = fault->Find("point_rates"); rates && rates->is_object()) {
      for (const auto& [point, rate] : rates->members()) {
        if (rate.is_number()) report.fault.point_rates[point] = rate.as_number();
      }
    }
  }
  if (const JsonValue* phases = doc.Find("phases"); phases && phases->is_array()) {
    for (size_t i = 0; i < phases->size(); ++i) {
      const JsonValue& row = phases->at(i);
      if (!row.is_object()) {
        return Status::InvalidArgument("phases[" + std::to_string(i) + "] is not an object");
      }
      TraceRecorder::PhaseStats p;
      p.name = row.GetStringOr("name", "");
      if (p.name.empty()) {
        return Status::InvalidArgument("phases[" + std::to_string(i) + "] has no name");
      }
      p.count = static_cast<uint64_t>(row.GetNumberOr("count", 0));
      p.wall_ms_total = row.GetNumberOr("wall_ms_total", 0.0);
      p.wall_ms_mean = row.GetNumberOr("wall_ms_mean", 0.0);
      p.wall_ms_min = row.GetNumberOr("wall_ms_min", 0.0);
      p.wall_ms_max = row.GetNumberOr("wall_ms_max", 0.0);
      p.cpu_ms_total = row.GetNumberOr("cpu_ms_total", 0.0);
      p.alloc_bytes_total = static_cast<uint64_t>(row.GetNumberOr("alloc_bytes_total", 0));
      p.rss_peak_bytes = static_cast<uint64_t>(row.GetNumberOr("rss_peak_bytes", 0));
      report.phases.push_back(std::move(p));
    }
  }
  if (const JsonValue* histos = doc.Find("histograms"); histos && histos->is_array()) {
    for (size_t i = 0; i < histos->size(); ++i) {
      const JsonValue& row = histos->at(i);
      if (!row.is_object()) continue;
      MetricsRegistry::HistogramSummary h;
      h.name = row.GetStringOr("name", "");
      h.count = static_cast<uint64_t>(row.GetNumberOr("count", 0));
      h.mean = row.GetNumberOr("mean", 0.0);
      h.min = row.GetNumberOr("min", 0.0);
      h.max = row.GetNumberOr("max", 0.0);
      h.p50 = row.GetNumberOr("p50", 0.0);
      h.p95 = row.GetNumberOr("p95", 0.0);
      h.p99 = row.GetNumberOr("p99", 0.0);
      report.histograms.push_back(std::move(h));
    }
  }
  if (const JsonValue* outputs = doc.Find("outputs"); outputs && outputs->is_array()) {
    for (size_t i = 0; i < outputs->size(); ++i) {
      const JsonValue& row = outputs->at(i);
      if (!row.is_object()) continue;
      OutputDigest out;
      out.name = row.GetStringOr("name", "");
      out.path = row.GetStringOr("path", "");
      out.bytes = static_cast<uint64_t>(row.GetNumberOr("bytes", 0));
      out.fnv1a = row.GetStringOr("fnv1a", "");
      report.outputs.push_back(std::move(out));
    }
  }
  // Optional since v10 writers only (serving benches with SLO rules);
  // older reports simply have none.
  if (const JsonValue* slos = doc.Find("slos"); slos && slos->is_array()) {
    for (size_t i = 0; i < slos->size(); ++i) {
      const JsonValue& row = slos->at(i);
      if (!row.is_object()) continue;
      SloAttainment slo;
      slo.rule = row.GetStringOr("rule", "");
      slo.signal = row.GetStringOr("signal", "");
      slo.tenant = row.GetStringOr("tenant", "");
      slo.objective = row.GetNumberOr("objective", 0.0);
      slo.attained = row.GetNumberOr("attained", 0.0);
      slo.met = row.GetBoolOr("met", false);
      slo.events = static_cast<uint64_t>(row.GetNumberOr("events", 0));
      report.slos.push_back(std::move(slo));
    }
  }
  // Optional since v6 writers only; pre-v6 reports simply have none.
  if (const JsonValue* profile = doc.Find("profile"); profile && profile->is_object()) {
    report.profile.enabled = profile->GetBoolOr("enabled", false);
    report.profile.hz = static_cast<int>(profile->GetNumberOr("hz", 0));
    report.profile.path = profile->GetStringOr("path", "");
    report.profile.folded_path = profile->GetStringOr("folded_path", "");
    report.profile.samples = static_cast<uint64_t>(profile->GetNumberOr("samples", 0));
    report.profile.dropped = static_cast<uint64_t>(profile->GetNumberOr("dropped", 0));
  }
  return report;
}

Result<RunReport> RunReport::Load(const std::string& path) {
  Result<JsonValue> doc = JsonValue::Load(path);
  if (!doc.ok()) return doc.status();
  Result<RunReport> report = FromJson(*doc);
  if (!report.ok()) return report.status().Annotate(path);
  return report;
}

Status ValidateReportJson(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("report is not a JSON object");
  if (doc.GetStringOr("schema", "") != RunReport::SchemaTag()) {
    return Status::InvalidArgument("schema tag missing or wrong");
  }
  if (doc.GetNumberOr("schema_version", 0) < 1) {
    return Status::InvalidArgument("schema_version missing");
  }
  struct Required {
    const char* key;
    JsonValue::Kind kind;
  };
  const Required required[] = {
      {"name", JsonValue::Kind::kString},     {"binary", JsonValue::Kind::kString},
      {"flags", JsonValue::Kind::kObject},    {"seed", JsonValue::Kind::kNumber},
      {"threads", JsonValue::Kind::kNumber},  {"scale", JsonValue::Kind::kNumber},
      {"build", JsonValue::Kind::kObject},    {"fault", JsonValue::Kind::kObject},
      {"phases", JsonValue::Kind::kArray},    {"histograms", JsonValue::Kind::kArray},
      {"counters", JsonValue::Kind::kObject}, {"ledgers", JsonValue::Kind::kArray},
      {"outputs", JsonValue::Kind::kArray},   {"wall_seconds", JsonValue::Kind::kNumber},
      {"cpu_seconds", JsonValue::Kind::kNumber}, {"flight", JsonValue::Kind::kObject},
  };
  for (const Required& r : required) {
    const JsonValue* v = doc.Find(r.key);
    if (!v) return Status::InvalidArgument(std::string("missing key \"") + r.key + "\"");
    if (v->kind() != r.kind) {
      return Status::InvalidArgument(std::string("key \"") + r.key + "\" has the wrong kind");
    }
  }
  const JsonValue* phases = doc.Find("phases");
  for (size_t i = 0; i < phases->size(); ++i) {
    const JsonValue& row = phases->at(i);
    if (!row.is_object() || row.GetStringOr("name", "").empty() ||
        !row.Has("wall_ms_total") || !row.Has("cpu_ms_total") || !row.Has("count")) {
      return Status::InvalidArgument("phases[" + std::to_string(i) + "] malformed");
    }
  }
  const JsonValue* outputs = doc.Find("outputs");
  for (size_t i = 0; i < outputs->size(); ++i) {
    const JsonValue& row = outputs->at(i);
    if (!row.is_object() || row.GetStringOr("path", "").empty() ||
        row.GetStringOr("fnv1a", "").size() != 16) {
      return Status::InvalidArgument("outputs[" + std::to_string(i) + "] malformed");
    }
  }
  const JsonValue* fault = doc.Find("fault");
  if (!fault->Has("armed") || !fault->Has("rate")) {
    return Status::InvalidArgument("fault section malformed");
  }
  // "slos" is optional (v10+ serving benches); when present each row must
  // be a complete attainment record.
  if (const JsonValue* slos = doc.Find("slos"); slos != nullptr) {
    if (!slos->is_array()) return Status::InvalidArgument("key \"slos\" has the wrong kind");
    for (size_t i = 0; i < slos->size(); ++i) {
      const JsonValue& row = slos->at(i);
      if (!row.is_object() || row.GetStringOr("rule", "").empty() ||
          row.GetStringOr("signal", "").empty() || !row.Has("objective") ||
          !row.Has("attained") || !row.Has("met")) {
        return Status::InvalidArgument("slos[" + std::to_string(i) + "] malformed");
      }
    }
  }
  return Status::Ok();
}

ReportDiff DiffReports(const RunReport& baseline, const RunReport& current,
                       const DiffOptions& options) {
  ReportDiff diff;
  std::map<std::string, const TraceRecorder::PhaseStats*> current_by_name;
  for (const TraceRecorder::PhaseStats& p : current.phases) current_by_name[p.name] = &p;

  std::map<std::string, bool> seen;
  for (const TraceRecorder::PhaseStats& base : baseline.phases) {
    PhaseDelta delta;
    delta.name = base.name;
    delta.baseline_ms = base.wall_ms_total;
    diff.baseline_total_ms += base.wall_ms_total;
    auto it = current_by_name.find(base.name);
    if (it == current_by_name.end()) {
      delta.only_in_baseline = true;
    } else {
      seen[base.name] = true;
      delta.current_ms = it->second->wall_ms_total;
      diff.current_total_ms += delta.current_ms;
      delta.ratio = base.wall_ms_total > 0.0 ? delta.current_ms / base.wall_ms_total : 0.0;
      // A regression needs both the relative threshold and the absolute
      // floor: sub-noise phases can triple without meaning anything.
      delta.regressed =
          delta.current_ms > base.wall_ms_total * (1.0 + options.threshold) &&
          delta.current_ms - base.wall_ms_total > options.min_ms;
      delta.baseline_rss_peak = base.rss_peak_bytes;
      delta.current_rss_peak = it->second->rss_peak_bytes;
      // The memory gate is opt-in and only meaningful when both sides carry
      // numbers (pre-v6 baselines report 0).
      if (options.mem_threshold > 0.0 && delta.baseline_rss_peak > 0 &&
          delta.current_rss_peak > 0) {
        delta.mem_regressed =
            static_cast<double>(delta.current_rss_peak) >
                static_cast<double>(delta.baseline_rss_peak) * (1.0 + options.mem_threshold) &&
            delta.current_rss_peak - delta.baseline_rss_peak > options.min_mem_bytes;
      }
    }
    diff.regressed = diff.regressed || delta.regressed || delta.mem_regressed;
    diff.phases.push_back(std::move(delta));
  }
  for (const TraceRecorder::PhaseStats& cur : current.phases) {
    if (seen.count(cur.name)) continue;
    PhaseDelta delta;
    delta.name = cur.name;
    delta.current_ms = cur.wall_ms_total;
    diff.current_total_ms += cur.wall_ms_total;
    delta.only_in_current = true;
    diff.phases.push_back(std::move(delta));
  }

  std::map<std::string, const RunReport::OutputDigest*> current_outputs;
  for (const RunReport::OutputDigest& out : current.outputs) current_outputs[out.name] = &out;
  for (const RunReport::OutputDigest& base : baseline.outputs) {
    auto it = current_outputs.find(base.name);
    if (it != current_outputs.end() && !base.fnv1a.empty() &&
        base.fnv1a != it->second->fnv1a) {
      diff.digest_mismatches.push_back(base.name);
    }
  }
  if (options.check_digests && !diff.digest_mismatches.empty()) diff.regressed = true;
  return diff;
}

Table ReportDiff::Summary() const {
  Table table({"phase", "baseline ms", "current ms", "ratio", "verdict"});
  for (const PhaseDelta& delta : phases) {
    std::string verdict = delta.only_in_baseline ? "missing"
                          : delta.only_in_current ? "new"
                          : delta.regressed       ? "REGRESSED"
                          : delta.mem_regressed   ? "MEM REGRESSED"
                                                  : "ok";
    table.AddRow({delta.name,
                  delta.only_in_current ? "-" : Table::FormatDouble(delta.baseline_ms, 3),
                  delta.only_in_baseline ? "-" : Table::FormatDouble(delta.current_ms, 3),
                  delta.only_in_baseline || delta.only_in_current
                      ? "-"
                      : Table::FormatDouble(delta.ratio, 3),
                  verdict});
  }
  table.AddRow({"TOTAL", Table::FormatDouble(baseline_total_ms, 3),
                Table::FormatDouble(current_total_ms, 3),
                baseline_total_ms > 0.0
                    ? Table::FormatDouble(current_total_ms / baseline_total_ms, 3)
                    : "-",
                regressed ? "REGRESSED" : "ok"});
  return table;
}

}  // namespace ppdp::obs
