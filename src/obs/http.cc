#include "obs/http.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace ppdp::obs {

int HttpRequest::QueryIntOr(const std::string& key, int fallback) const {
  auto it = query.find(key);
  if (it == query.end()) return fallback;
  errno = 0;
  char* rest = nullptr;
  long value = std::strtol(it->second.c_str(), &rest, 10);
  if (errno != 0 || rest == it->second.c_str() || *rest != '\0') return fallback;
  return static_cast<int>(value);
}

std::string HttpRequest::QueryStringOr(const std::string& key, const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

void HttpResponse::Text(int status, std::string body) {
  status_ = status;
  content_type_ = "text/plain; charset=utf-8";
  body_ = std::move(body);
}

void HttpResponse::Json(int status, const JsonValue& doc) {
  status_ = status;
  content_type_ = "application/json";
  body_ = doc.Dump() + "\n";
}

void HttpResponse::RawJson(int status, std::string body) {
  status_ = status;
  content_type_ = "application/json";
  body_ = std::move(body);
}

std::string HttpResponse::Render() const {
  std::string response = "HTTP/1.1 " + std::to_string(status_) + " " + HttpStatusText(status_) +
                         "\r\nContent-Type: " + content_type_ +
                         "\r\nContent-Length: " + std::to_string(body_.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body_;
  return response;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::map<std::string, std::string> ParseQueryString(std::string_view query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(pos, end - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      std::string key(eq == std::string_view::npos ? pair : pair.substr(0, eq));
      std::string value(eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1));
      if (!key.empty()) params.emplace(std::move(key), std::move(value));
    }
    pos = end + 1;
  }
  return params;
}

}  // namespace ppdp::obs
