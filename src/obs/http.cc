#include "obs/http.h"

#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <utility>

namespace ppdp::obs {

int HttpRequest::QueryIntOr(const std::string& key, int fallback) const {
  auto it = query.find(key);
  if (it == query.end()) return fallback;
  errno = 0;
  char* rest = nullptr;
  long value = std::strtol(it->second.c_str(), &rest, 10);
  if (errno != 0 || rest == it->second.c_str() || *rest != '\0') return fallback;
  return static_cast<int>(value);
}

std::string HttpRequest::QueryStringOr(const std::string& key, const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

std::string HttpRequest::HeaderOr(const std::string& lower_name, const std::string& fallback) const {
  auto it = headers.find(lower_name);
  return it == headers.end() ? fallback : it->second;
}

void HttpResponse::Text(int status, std::string body) {
  status_ = status;
  content_type_ = "text/plain; charset=utf-8";
  body_ = std::move(body);
}

void HttpResponse::Json(int status, const JsonValue& doc) {
  status_ = status;
  content_type_ = "application/json";
  body_ = doc.Dump() + "\n";
}

void HttpResponse::RawJson(int status, std::string body) {
  status_ = status;
  content_type_ = "application/json";
  body_ = std::move(body);
}

std::string HttpResponse::Render() const {
  std::string response = "HTTP/1.1 " + std::to_string(status_) + " " + HttpStatusText(status_);
  for (const auto& [name, value] : extra_headers_) {
    response += "\r\n" + name + ": " + value;
  }
  response += "\r\nContent-Type: " + content_type_ +
              "\r\nContent-Length: " + std::to_string(body_.size()) +
              "\r\nConnection: close\r\n\r\n";
  response += body_;
  return response;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Internal Server Error";
  }
}

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

}  // namespace

Result<HttpRequestHead> ParseHttpRequestHead(std::string_view head) {
  size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) line_end = head.size();
  const std::string_view line = head.substr(0, line_end);

  const size_t first_space = line.find(' ');
  const size_t second_space =
      first_space == std::string_view::npos ? std::string_view::npos
                                            : line.find(' ', first_space + 1);
  if (first_space == std::string_view::npos || second_space == std::string_view::npos ||
      first_space == 0 || second_space == first_space + 1) {
    return Status::InvalidArgument("malformed request line");
  }
  for (char c : line) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      return Status::InvalidArgument("control byte in request line");
    }
  }

  HttpRequestHead parsed;
  parsed.method = std::string(line.substr(0, first_space));
  parsed.path = std::string(line.substr(first_space + 1, second_space - first_space - 1));
  if (parsed.path[0] != '/') {
    // Only origin-form targets route: "?q=1" would otherwise split into an
    // empty path, and absolute-form/authority-form targets are proxy
    // business this server never speaks.
    return Status::InvalidArgument("request target must be origin-form");
  }
  if (const size_t q = parsed.path.find('?'); q != std::string::npos) {
    parsed.query = ParseQueryString(std::string_view(parsed.path).substr(q + 1));
    parsed.path.resize(q);
  }

  size_t pos = line_end == head.size() ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t end = head.find("\r\n", pos);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view header = head.substr(pos, end - pos);
    pos = end == head.size() ? head.size() : end + 2;
    if (header.empty()) continue;
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    const std::string_view name = header.substr(0, colon);
    if (!name.empty() && (name.back() == ' ' || name.back() == '\t')) {
      // RFC 7230 §3.2.4: whitespace between the field name and the colon is
      // a smuggling-prone ambiguity; reject instead of trimming.
      return Status::InvalidArgument("whitespace before header colon");
    }
    const std::string_view value = Trim(header.substr(colon + 1));

    std::string lower_name(name);
    for (char& c : lower_name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    parsed.headers.emplace(std::move(lower_name), std::string(value));

    if (EqualsIgnoreCase(name, "Transfer-Encoding")) {
      return Status::InvalidArgument("Transfer-Encoding not supported");
    }
    if (EqualsIgnoreCase(name, "Content-Length")) {
      if (parsed.has_content_length) {
        // Duplicates are rejected even when the values agree: a downstream
        // parser that picks the other copy must never disagree with us
        // about where the body ends.
        return Status::InvalidArgument("duplicate Content-Length");
      }
      if (value.empty()) return Status::InvalidArgument("malformed Content-Length");
      uint64_t length = 0;
      for (char c : value) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("malformed Content-Length");
        }
        if (length > (UINT64_MAX - 9) / 10) {
          return Status::InvalidArgument("Content-Length overflow");
        }
        length = length * 10 + static_cast<uint64_t>(c - '0');
      }
      parsed.content_length = static_cast<size_t>(length);
      parsed.has_content_length = true;
    }
  }
  return parsed;
}

std::map<std::string, std::string> ParseQueryString(std::string_view query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string_view::npos) end = query.size();
    std::string_view pair = query.substr(pos, end - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      std::string key(eq == std::string_view::npos ? pair : pair.substr(0, eq));
      std::string value(eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1));
      if (!key.empty()) params.emplace(std::move(key), std::move(value));
    }
    pos = end + 1;
  }
  return params;
}

}  // namespace ppdp::obs
