#include "obs/slo.h"

#include <algorithm>
#include <cmath>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace ppdp::obs {
namespace {

bool ValidRuleName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

/// Windowed latency histogram bounds: finer than DefaultLatencyBoundsSeconds
/// in the 1ms..5s band where request SLOs actually live, since windowed
/// quantiles have no exact-sample fallback to lean on.
std::vector<double> RequestLatencyBounds() {
  return {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,   0.5,   1.0,    2.5,   5.0,  10.0,  30.0};
}

}  // namespace

// ---------------------------------------------------------------- SlidingWindow

SlidingWindow::SlidingWindow(Options options) : options_(std::move(options)) {
  PPDP_CHECK(options_.bucket_seconds > 0) << "bucket_seconds must be positive";
  PPDP_CHECK(options_.num_buckets > 0) << "num_buckets must be positive";
  for (size_t i = 1; i < options_.bounds.size(); ++i) {
    PPDP_CHECK(options_.bounds[i] > options_.bounds[i - 1]) << "bounds must be increasing";
  }
  ring_.resize(options_.num_buckets);
}

SlidingWindow::Bucket& SlidingWindow::BucketFor(double now) {
  const int64_t index = static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
  Bucket& bucket = ring_[static_cast<size_t>(((index % static_cast<int64_t>(ring_.size())) +
                                              static_cast<int64_t>(ring_.size())) %
                                             static_cast<int64_t>(ring_.size()))];
  if (bucket.index != index) {
    bucket.index = index;
    bucket.count = 0;
    bucket.sum = 0.0;
    bucket.min = 0.0;
    bucket.max = 0.0;
    if (!options_.bounds.empty()) {
      bucket.bound_counts.assign(options_.bounds.size() + 1, 0);
    }
  }
  return bucket;
}

int64_t SlidingWindow::FirstIndex(double window_seconds, double now) const {
  const double window = std::min(std::max(window_seconds, options_.bucket_seconds),
                                 span_seconds());
  const int64_t current = static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
  const int64_t covered =
      static_cast<int64_t>(std::ceil(window / options_.bucket_seconds - 1e-9));
  return current - covered + 1;
}

void SlidingWindow::Add(double value, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Bucket& bucket = BucketFor(now);
  if (bucket.count == 0) {
    bucket.min = value;
    bucket.max = value;
  } else {
    bucket.min = std::min(bucket.min, value);
    bucket.max = std::max(bucket.max, value);
  }
  ++bucket.count;
  bucket.sum += value;
  if (!options_.bounds.empty()) {
    size_t b = 0;
    while (b < options_.bounds.size() && value > options_.bounds[b]) ++b;
    ++bucket.bound_counts[b];
  }
}

SlidingWindow::WindowStats SlidingWindow::StatsOver(double window_seconds, double now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const int64_t first = FirstIndex(window_seconds, now);
  const int64_t current = static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
  WindowStats stats;
  for (const Bucket& bucket : ring_) {
    if (bucket.index < first || bucket.index > current || bucket.count == 0) continue;
    stats.count += bucket.count;
    stats.sum += bucket.sum;
  }
  if (stats.count > 0) stats.mean = stats.sum / static_cast<double>(stats.count);
  return stats;
}

double SlidingWindow::RateOver(double window_seconds, double now) const {
  if (window_seconds <= 0) return 0.0;
  return StatsOver(window_seconds, now).sum / window_seconds;
}

double SlidingWindow::QuantileOver(double window_seconds, double q, double now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.bounds.empty()) return 0.0;
  const int64_t first = FirstIndex(window_seconds, now);
  const int64_t current = static_cast<int64_t>(std::floor(now / options_.bucket_seconds));
  std::vector<uint64_t> merged(options_.bounds.size() + 1, 0);
  uint64_t count = 0;
  double lo_seen = 0.0;
  double hi_seen = 0.0;
  for (const Bucket& bucket : ring_) {
    if (bucket.index < first || bucket.index > current || bucket.count == 0) continue;
    for (size_t b = 0; b < merged.size(); ++b) merged[b] += bucket.bound_counts[b];
    if (count == 0) {
      lo_seen = bucket.min;
      hi_seen = bucket.max;
    } else {
      lo_seen = std::min(lo_seen, bucket.min);
      hi_seen = std::max(hi_seen, bucket.max);
    }
    count += bucket.count;
  }
  if (count == 0) return 0.0;
  if (count == 1) return hi_seen;
  // Same bucket interpolation as Histogram::BucketQuantileLocked: find the
  // bucket covering rank q*count and interpolate linearly inside it, with
  // the observed min/max clamping the open-ended edges.
  const double clamped_q = std::min(std::max(q, 0.0), 1.0);
  const double rank = clamped_q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < merged.size(); ++b) {
    if (merged[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += merged[b];
    if (static_cast<double>(cumulative) >= rank) {
      double lo = b == 0 ? std::min(lo_seen, options_.bounds[0]) : options_.bounds[b - 1];
      double hi = b < options_.bounds.size() ? options_.bounds[b] : hi_seen;
      lo = std::max(lo, lo_seen);
      hi = std::min(hi, hi_seen);
      if (hi <= lo) return std::min(std::max(lo, lo_seen), hi_seen);
      const double within = (rank - before) / static_cast<double>(merged[b]);
      return lo + within * (hi - lo);
    }
  }
  return hi_seen;
}

// ----------------------------------------------------------------- rule model

const char* SignalName(AlertRule::Signal signal) {
  switch (signal) {
    case AlertRule::Signal::kAvailability:
      return "availability";
    case AlertRule::Signal::kLatency:
      return "latency";
    case AlertRule::Signal::kQueue:
      return "queue";
    case AlertRule::Signal::kLedgerBurn:
      return "ledger_burn";
  }
  return "unknown";
}

const char* SeverityName(AlertRule::Severity severity) {
  return severity == AlertRule::Severity::kPage ? "page" : "ticket";
}

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

std::vector<AlertRule> DefaultSloRules() {
  std::vector<AlertRule> rules;
  {
    // 99.9% non-5xx, paging at 14.4x burn (the classic "2% of a 30d budget
    // in one hour" multiplier) over 60s/600s windows.
    AlertRule rule;
    rule.name = "availability";
    rule.signal = AlertRule::Signal::kAvailability;
    rule.severity = AlertRule::Severity::kPage;
    rule.objective = 0.999;
    rule.burn_rate = 14.4;
    rule.min_count = 10;
    rule.for_seconds = 5.0;
    rules.push_back(rule);
  }
  {
    AlertRule rule;
    rule.name = "latency_p99";
    rule.signal = AlertRule::Signal::kLatency;
    rule.severity = AlertRule::Severity::kTicket;
    rule.quantile = 0.99;
    rule.threshold = 2.5;
    rule.min_count = 10;
    rule.for_seconds = 5.0;
    rules.push_back(rule);
  }
  {
    AlertRule rule;
    rule.name = "queue_pressure";
    rule.signal = AlertRule::Signal::kQueue;
    rule.severity = AlertRule::Severity::kTicket;
    rule.threshold = 0.9;
    rule.min_count = 5;
    rule.for_seconds = 5.0;
    rules.push_back(rule);
  }
  {
    // Pages while the tenant still has budget left: projected exhaustion
    // within 600s at the observed spend rate, in both windows.
    AlertRule rule;
    rule.name = "ledger_burn";
    rule.signal = AlertRule::Signal::kLedgerBurn;
    rule.severity = AlertRule::Severity::kPage;
    rule.horizon_seconds = 600.0;
    rule.min_count = 1;
    rule.for_seconds = 0.0;
    rules.push_back(rule);
  }
  return rules;
}

namespace {

Result<AlertRule> ParseRule(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("slo rule must be an object");
  AlertRule rule;
  rule.name = doc.GetStringOr("name", "");
  if (!ValidRuleName(rule.name)) {
    return Status::InvalidArgument("slo rule name must match [A-Za-z0-9_.-]{1,64}: '" + rule.name +
                                   "'");
  }
  const std::string signal = doc.GetStringOr("signal", "");
  if (signal == "availability") {
    rule.signal = AlertRule::Signal::kAvailability;
  } else if (signal == "latency") {
    rule.signal = AlertRule::Signal::kLatency;
  } else if (signal == "queue") {
    rule.signal = AlertRule::Signal::kQueue;
  } else if (signal == "ledger_burn") {
    rule.signal = AlertRule::Signal::kLedgerBurn;
  } else {
    return Status::InvalidArgument("slo rule '" + rule.name + "': unknown signal '" + signal +
                                   "'");
  }
  const std::string severity = doc.GetStringOr("severity", "ticket");
  if (severity == "ticket") {
    rule.severity = AlertRule::Severity::kTicket;
  } else if (severity == "page") {
    rule.severity = AlertRule::Severity::kPage;
  } else {
    return Status::InvalidArgument("slo rule '" + rule.name + "': unknown severity '" + severity +
                                   "'");
  }
  rule.fast_window_seconds = doc.GetNumberOr("fast_window_s", rule.fast_window_seconds);
  rule.slow_window_seconds = doc.GetNumberOr("slow_window_s", rule.slow_window_seconds);
  rule.for_seconds = doc.GetNumberOr("for_s", rule.for_seconds);
  rule.resolve_seconds = doc.GetNumberOr("resolve_s", rule.resolve_seconds);
  rule.min_count = static_cast<uint64_t>(doc.GetNumberOr(
      "min_count", static_cast<double>(rule.min_count)));
  rule.objective = doc.GetNumberOr("objective", rule.objective);
  rule.burn_rate = doc.GetNumberOr("burn_rate", rule.burn_rate);
  rule.quantile = doc.GetNumberOr("quantile", rule.quantile);
  rule.threshold = doc.GetNumberOr("threshold", rule.threshold);
  if (doc.Has("threshold_ms")) rule.threshold = doc.GetNumberOr("threshold_ms", 0.0) / 1000.0;
  rule.horizon_seconds = doc.GetNumberOr("horizon_s", rule.horizon_seconds);

  if (!(rule.fast_window_seconds > 0) || !(rule.slow_window_seconds > 0)) {
    return Status::InvalidArgument("slo rule '" + rule.name + "': windows must be positive");
  }
  if (rule.fast_window_seconds > rule.slow_window_seconds) {
    return Status::InvalidArgument("slo rule '" + rule.name +
                                   "': fast window must not exceed slow window");
  }
  if (rule.slow_window_seconds > 3600.0) {
    return Status::InvalidArgument("slo rule '" + rule.name +
                                   "': slow window must be <= 3600s (the ring span)");
  }
  if (rule.for_seconds < 0 || rule.resolve_seconds < 0) {
    return Status::InvalidArgument("slo rule '" + rule.name + "': holds must be non-negative");
  }
  if (rule.signal == AlertRule::Signal::kAvailability) {
    if (!(rule.objective > 0.0) || !(rule.objective < 1.0)) {
      return Status::InvalidArgument("slo rule '" + rule.name +
                                     "': objective must be in (0, 1)");
    }
    if (!(rule.burn_rate > 0.0)) {
      return Status::InvalidArgument("slo rule '" + rule.name + "': burn_rate must be positive");
    }
  }
  if (rule.signal == AlertRule::Signal::kLatency) {
    if (!(rule.quantile > 0.0) || !(rule.quantile <= 1.0)) {
      return Status::InvalidArgument("slo rule '" + rule.name + "': quantile must be in (0, 1]");
    }
    if (!(rule.threshold > 0.0)) {
      return Status::InvalidArgument("slo rule '" + rule.name + "': threshold must be positive");
    }
  }
  if (rule.signal == AlertRule::Signal::kQueue && !(rule.threshold > 0.0)) {
    return Status::InvalidArgument("slo rule '" + rule.name + "': threshold must be positive");
  }
  if (rule.signal == AlertRule::Signal::kLedgerBurn && !(rule.horizon_seconds > 0.0)) {
    return Status::InvalidArgument("slo rule '" + rule.name + "': horizon_s must be positive");
  }
  return rule;
}

}  // namespace

Result<std::vector<AlertRule>> ParseSloConfig(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("slo config must be a JSON object");
  const std::string schema = doc.GetStringOr("schema", "");
  if (schema != "ppdp.slo.v1") {
    return Status::InvalidArgument("slo config schema must be ppdp.slo.v1, got '" + schema + "'");
  }
  const JsonValue* rules_json = doc.Find("rules");
  if (rules_json == nullptr || !rules_json->is_array()) {
    return Status::InvalidArgument("slo config must have a 'rules' array");
  }
  std::vector<AlertRule> rules;
  for (size_t i = 0; i < rules_json->size(); ++i) {
    PPDP_ASSIGN_OR_RETURN(AlertRule rule, ParseRule(rules_json->at(i)));
    for (const AlertRule& existing : rules) {
      if (existing.name == rule.name) {
        return Status::InvalidArgument("slo config has duplicate rule name '" + rule.name + "'");
      }
    }
    rules.push_back(std::move(rule));
  }
  if (rules.empty()) return Status::InvalidArgument("slo config has no rules");
  return rules;
}

Result<std::vector<AlertRule>> LoadSloConfig(const std::string& path) {
  PPDP_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Load(path));
  return ParseSloConfig(doc);
}

JsonValue AlertTransition::ToJson() const {
  JsonValue record = JsonValue::Object();
  record.Set("schema", JsonValue::String("ppdp.alertlog.v1"));
  record.Set("t_seconds", JsonValue::Number(t_seconds));
  record.Set("rule", JsonValue::String(rule));
  if (!tenant.empty()) record.Set("tenant", JsonValue::String(tenant));
  record.Set("from", JsonValue::String(AlertStateName(from)));
  record.Set("to", JsonValue::String(AlertStateName(to)));
  record.Set("severity", JsonValue::String(SeverityName(severity)));
  record.Set("burn_fast", JsonValue::Number(burn_fast));
  record.Set("burn_slow", JsonValue::Number(burn_slow));
  return record;
}

// ------------------------------------------------------------------ SloEngine

SloEngine::SloEngine(Options options)
    : options_(std::move(options)),
      clock_(options_.clock ? options_.clock : SloClock(&MonotonicSeconds)),
      requests_(SlidingWindow::Options{options_.bucket_seconds, 3660, {}}),
      server_errors_(SlidingWindow::Options{options_.bucket_seconds, 3660, {}}),
      latency_(SlidingWindow::Options{options_.bucket_seconds, 3660, RequestLatencyBounds()}),
      queue_depth_(SlidingWindow::Options{options_.bucket_seconds, 3660, {}}) {}

Result<std::unique_ptr<SloEngine>> SloEngine::Create(Options options) {
  if (!(options.bucket_seconds > 0)) {
    return Status::InvalidArgument("slo bucket_seconds must be positive");
  }
  if (options.eval_period_seconds < 0) {
    return Status::InvalidArgument("slo eval_period_seconds must be non-negative");
  }
  if (options.rules.empty()) options.rules = DefaultSloRules();
  for (size_t i = 0; i < options.rules.size(); ++i) {
    const AlertRule& rule = options.rules[i];
    if (!ValidRuleName(rule.name)) {
      return Status::InvalidArgument("slo rule name must match [A-Za-z0-9_.-]{1,64}: '" +
                                     rule.name + "'");
    }
    for (size_t j = 0; j < i; ++j) {
      if (options.rules[j].name == rule.name) {
        return Status::InvalidArgument("duplicate slo rule name '" + rule.name + "'");
      }
    }
  }
  const std::string alert_log = options.alert_log;
  const double max_mb = options.alert_log_max_mb;
  std::unique_ptr<SloEngine> engine(new SloEngine(std::move(options)));
  if (!alert_log.empty()) {
    if (!(max_mb > 0)) return Status::InvalidArgument("alert_log_max_mb must be positive");
    PPDP_RETURN_IF_ERROR(
        engine->alert_log_.Open(alert_log, static_cast<uint64_t>(max_mb * 1024.0 * 1024.0)));
  }
  return engine;
}

void SloEngine::RecordRequest(int status, double latency_seconds) {
  const double now = clock_();
  requests_.Add(1.0, now);
  if (status >= 500) server_errors_.Add(1.0, now);
  latency_.Add(latency_seconds, now);
}

void SloEngine::RecordQueueDepth(double depth_ratio) {
  queue_depth_.Add(depth_ratio, clock_());
}

void SloEngine::RecordSpend(const std::string& tenant, double epsilon, double remaining_epsilon,
                            double budget_epsilon) {
  const double now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    if (tenants_.size() >= options_.max_tenants) return;
    TenantBurn burn;
    burn.spend = std::make_unique<SlidingWindow>(
        SlidingWindow::Options{options_.bucket_seconds, 3660, {}});
    it = tenants_.emplace(tenant, std::move(burn)).first;
  }
  it->second.spend->Add(epsilon, now);
  it->second.remaining = remaining_epsilon;
  it->second.budget = budget_epsilon;
}

SloEngine::SignalReading SloEngine::ReadSignal(const AlertRule& rule, const std::string& tenant,
                                               double window_seconds, double now) const {
  SignalReading reading;
  reading.inputs = JsonValue::Object();
  switch (rule.signal) {
    case AlertRule::Signal::kAvailability: {
      const SlidingWindow::WindowStats all = requests_.StatsOver(window_seconds, now);
      const SlidingWindow::WindowStats bad = server_errors_.StatsOver(window_seconds, now);
      reading.inputs.Set("requests", JsonValue::Number(static_cast<double>(all.count)));
      reading.inputs.Set("errors_5xx", JsonValue::Number(static_cast<double>(bad.count)));
      if (all.count < rule.min_count) return reading;
      const double error_ratio = static_cast<double>(bad.count) / static_cast<double>(all.count);
      const double budget = 1.0 - rule.objective;  // objective < 1 enforced at parse
      reading.evaluable = true;
      reading.burn = error_ratio / budget;
      reading.breach = reading.burn >= rule.burn_rate;
      reading.inputs.Set("error_ratio", JsonValue::Number(error_ratio));
      return reading;
    }
    case AlertRule::Signal::kLatency: {
      const SlidingWindow::WindowStats all = latency_.StatsOver(window_seconds, now);
      reading.inputs.Set("requests", JsonValue::Number(static_cast<double>(all.count)));
      if (all.count < rule.min_count) return reading;
      const double quantile = latency_.QuantileOver(window_seconds, rule.quantile, now);
      reading.evaluable = true;
      reading.burn = rule.threshold > 0 ? quantile / rule.threshold : 0.0;
      reading.breach = quantile > rule.threshold;
      reading.inputs.Set("quantile_seconds", JsonValue::Number(quantile));
      return reading;
    }
    case AlertRule::Signal::kQueue: {
      const SlidingWindow::WindowStats all = queue_depth_.StatsOver(window_seconds, now);
      reading.inputs.Set("samples", JsonValue::Number(static_cast<double>(all.count)));
      if (all.count < rule.min_count) return reading;
      reading.evaluable = true;
      reading.burn = rule.threshold > 0 ? all.mean / rule.threshold : 0.0;
      reading.breach = all.mean > rule.threshold;
      reading.inputs.Set("mean_depth_ratio", JsonValue::Number(all.mean));
      return reading;
    }
    case AlertRule::Signal::kLedgerBurn: {
      // Caller holds mutex_ (Evaluate): tenants_ access is safe, and the
      // tenant's own window takes only its internal lock.
      auto it = tenants_.find(tenant);
      if (it == tenants_.end()) return reading;
      const TenantBurn& burn = it->second;
      const SlidingWindow::WindowStats spend = burn.spend->StatsOver(window_seconds, now);
      reading.inputs.Set("spends", JsonValue::Number(static_cast<double>(spend.count)));
      reading.inputs.Set("remaining_epsilon", JsonValue::Number(burn.remaining));
      if (spend.count < rule.min_count) return reading;
      const double rate = spend.sum / window_seconds;  // ε per second
      reading.inputs.Set("spend_rate", JsonValue::Number(rate));
      if (!(rate > 0)) return reading;
      reading.evaluable = true;
      const double tte = burn.remaining / rate;  // projected seconds to exhaustion
      reading.burn = tte > 0 ? rule.horizon_seconds / tte : rule.horizon_seconds * 1e6;
      reading.breach = tte <= rule.horizon_seconds;
      reading.inputs.Set("time_to_exhaustion_s", JsonValue::Number(tte));
      return reading;
    }
  }
  return reading;
}

void SloEngine::Step(const AlertRule& rule, const std::string& tenant, Instance* instance,
                     double now, std::vector<AlertTransition>* transitions) {
  const SignalReading fast = ReadSignal(rule, tenant, rule.fast_window_seconds, now);
  const SignalReading slow = ReadSignal(rule, tenant, rule.slow_window_seconds, now);
  instance->burn_fast = fast.burn;
  instance->burn_slow = slow.burn;
  instance->inputs_fast = fast.inputs;
  instance->inputs_slow = slow.inputs;
  // The multi-window rule: only a breach in BOTH windows counts.
  const bool breach = fast.evaluable && slow.evaluable && fast.breach && slow.breach;

  auto emit = [&](AlertState from, AlertState to) {
    instance->state = to;
    instance->since_seconds = now;
    AlertTransition transition;
    transition.t_seconds = now;
    transition.rule = rule.name;
    transition.tenant = tenant;
    transition.from = from;
    transition.to = to;
    transition.severity = rule.severity;
    transition.burn_fast = fast.burn;
    transition.burn_slow = slow.burn;
    Export(transition);
    transitions->push_back(std::move(transition));
  };

  switch (instance->state) {
    case AlertState::kInactive:
    case AlertState::kResolved:
      if (breach) {
        instance->pending_since = now;
        emit(instance->state, AlertState::kPending);
        if (now - instance->pending_since >= rule.for_seconds) {
          emit(AlertState::kPending, AlertState::kFiring);
          instance->clear_since = -1.0;
        }
      } else if (instance->state == AlertState::kResolved) {
        // Resolved is sticky for visibility; it decays to inactive once the
        // resolve hold has passed again without a re-breach.
        if (now - instance->since_seconds >= rule.resolve_seconds) {
          instance->state = AlertState::kInactive;
          instance->since_seconds = now;
        }
      }
      break;
    case AlertState::kPending:
      if (!breach) {
        // Cleared before firing: fall back silently (no operator-visible
        // resolution for an alert that never fired).
        instance->state = AlertState::kInactive;
        instance->since_seconds = now;
      } else if (now - instance->pending_since >= rule.for_seconds) {
        emit(AlertState::kPending, AlertState::kFiring);
        instance->clear_since = -1.0;
      }
      break;
    case AlertState::kFiring:
      if (breach) {
        instance->clear_since = -1.0;
      } else {
        if (instance->clear_since < 0) instance->clear_since = now;
        if (now - instance->clear_since >= rule.resolve_seconds) {
          emit(AlertState::kFiring, AlertState::kResolved);
        }
      }
      break;
  }
}

void SloEngine::Export(const AlertTransition& transition) {
  ++transitions_total_;
  if (options_.export_metrics) {
    MetricsRegistry::Global().counter("slo.transitions.total").Increment();
    std::string instance_name = "slo.alert." + transition.rule;
    if (!transition.tenant.empty()) instance_name += "." + transition.tenant;
    MetricsRegistry::Global()
        .gauge(instance_name + ".state")
        .Set(static_cast<double>(static_cast<int>(transition.to)));
    MetricsRegistry::Global().gauge(instance_name + ".burn_fast").Set(transition.burn_fast);
    MetricsRegistry::Global().gauge(instance_name + ".burn_slow").Set(transition.burn_slow);
  }
  const std::string label =
      transition.tenant.empty() ? transition.rule : transition.rule + "/" + transition.tenant;
  FlightEvent event;
  event.elapsed_seconds = transition.t_seconds;
  event.category = "alert";
  event.severity = transition.to == AlertState::kFiring &&
                           transition.severity == AlertRule::Severity::kPage
                       ? "ERROR"
                       : "WARN";
  event.label = label;
  event.message = std::string(AlertStateName(transition.from)) + " -> " +
                  AlertStateName(transition.to);
  FlightRecorder::Global().Record(std::move(event));
  if (alert_log_.enabled()) {
    const Status status = alert_log_.Append(transition.ToJson().Dump());
    if (!status.ok()) {
      PPDP_LOG(WARN) << "alert log append failed" << Field("error", status.ToString());
    }
  }
}

std::vector<AlertTransition> SloEngine::Evaluate() {
  const double now = clock_();
  std::vector<AlertTransition> transitions;
  std::lock_guard<std::mutex> lock(mutex_);
  last_eval_seconds_ = now;
  for (const AlertRule& rule : options_.rules) {
    if (rule.signal == AlertRule::Signal::kLedgerBurn) {
      for (const auto& [tenant, burn] : tenants_) {
        Instance& instance = instances_[rule.name + "\n" + tenant];
        Step(rule, tenant, &instance, now, &transitions);
      }
    } else {
      Instance& instance = instances_[rule.name];
      Step(rule, "", &instance, now, &transitions);
    }
  }
  return transitions;
}

void SloEngine::EvaluateIfDue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double now = clock_();
    if (last_eval_seconds_ >= 0 && now - last_eval_seconds_ < options_.eval_period_seconds) {
      return;
    }
  }
  Evaluate();
}

int SloEngine::WorstFiringSeverity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  int worst = 0;
  for (const AlertRule& rule : options_.rules) {
    const int severity = rule.severity == AlertRule::Severity::kPage ? 2 : 1;
    if (severity <= worst) continue;
    for (const auto& [key, instance] : instances_) {
      const std::string& name = key.substr(0, key.find('\n'));
      if (name == rule.name && instance.state == AlertState::kFiring) {
        worst = severity;
        break;
      }
    }
  }
  return worst;
}

std::vector<std::string> SloEngine::FiringAlerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> firing;
  for (const auto& [key, instance] : instances_) {
    if (instance.state != AlertState::kFiring) continue;
    std::string name = key;
    const size_t sep = name.find('\n');
    if (sep != std::string::npos) name[sep] = '/';
    firing.push_back(std::move(name));
  }
  return firing;
}

JsonValue SloEngine::AlertzDocument() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("ppdp.alertz.v1"));
  doc.Set("t_seconds", JsonValue::Number(last_eval_seconds_ < 0 ? 0.0 : last_eval_seconds_));
  doc.Set("transitions_total", JsonValue::Number(static_cast<double>(transitions_total_)));
  JsonValue rules = JsonValue::Array();
  for (const AlertRule& rule : options_.rules) {
    JsonValue rule_json = JsonValue::Object();
    rule_json.Set("rule", JsonValue::String(rule.name));
    rule_json.Set("signal", JsonValue::String(SignalName(rule.signal)));
    rule_json.Set("severity", JsonValue::String(SeverityName(rule.severity)));
    rule_json.Set("fast_window_s", JsonValue::Number(rule.fast_window_seconds));
    rule_json.Set("slow_window_s", JsonValue::Number(rule.slow_window_seconds));
    JsonValue instances = JsonValue::Array();
    for (const auto& [key, instance] : instances_) {
      const size_t sep = key.find('\n');
      const std::string name = key.substr(0, sep == std::string::npos ? key.size() : sep);
      if (name != rule.name) continue;
      JsonValue instance_json = JsonValue::Object();
      if (sep != std::string::npos) {
        instance_json.Set("tenant", JsonValue::String(key.substr(sep + 1)));
      }
      instance_json.Set("state", JsonValue::String(AlertStateName(instance.state)));
      instance_json.Set("since_s", JsonValue::Number(instance.since_seconds));
      instance_json.Set("burn_fast", JsonValue::Number(instance.burn_fast));
      instance_json.Set("burn_slow", JsonValue::Number(instance.burn_slow));
      instance_json.Set("inputs_fast", instance.inputs_fast);
      instance_json.Set("inputs_slow", instance.inputs_slow);
      instances.Append(std::move(instance_json));
    }
    rule_json.Set("instances", std::move(instances));
    rules.Append(std::move(rule_json));
  }
  doc.Set("rules", std::move(rules));
  return doc;
}

std::vector<SloAttainment> SloEngine::Attainment() const {
  const double now = clock_();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloAttainment> rows;
  for (const AlertRule& rule : options_.rules) {
    SloAttainment row;
    row.rule = rule.name;
    row.signal = SignalName(rule.signal);
    switch (rule.signal) {
      case AlertRule::Signal::kAvailability: {
        const SlidingWindow::WindowStats all =
            requests_.StatsOver(rule.slow_window_seconds, now);
        const SlidingWindow::WindowStats bad =
            server_errors_.StatsOver(rule.slow_window_seconds, now);
        row.objective = rule.objective;
        row.events = all.count;
        row.attained = all.count == 0 ? 1.0
                                      : 1.0 - static_cast<double>(bad.count) /
                                                  static_cast<double>(all.count);
        row.met = row.attained >= rule.objective;
        break;
      }
      case AlertRule::Signal::kLatency: {
        const SlidingWindow::WindowStats all = latency_.StatsOver(rule.slow_window_seconds, now);
        row.objective = rule.threshold;
        row.events = all.count;
        row.attained = latency_.QuantileOver(rule.slow_window_seconds, rule.quantile, now);
        row.met = row.attained <= rule.threshold;
        break;
      }
      case AlertRule::Signal::kQueue: {
        const SlidingWindow::WindowStats all =
            queue_depth_.StatsOver(rule.slow_window_seconds, now);
        row.objective = rule.threshold;
        row.events = all.count;
        row.attained = all.mean;
        row.met = row.attained <= rule.threshold;
        break;
      }
      case AlertRule::Signal::kLedgerBurn: {
        // Report the worst tenant: smallest projected time-to-exhaustion.
        row.objective = rule.horizon_seconds;
        double worst_tte = -1.0;
        uint64_t events = 0;
        std::string worst_tenant;
        for (const auto& [tenant, burn] : tenants_) {
          const SlidingWindow::WindowStats spend =
              burn.spend->StatsOver(rule.slow_window_seconds, now);
          events += spend.count;
          if (spend.count == 0 || !(spend.sum > 0)) continue;
          const double rate = spend.sum / rule.slow_window_seconds;
          const double tte = burn.remaining / rate;
          if (worst_tte < 0 || tte < worst_tte) {
            worst_tte = tte;
            worst_tenant = tenant;
          }
        }
        row.events = events;
        row.tenant = worst_tenant;
        // No spend observed => nothing burning; report the horizon itself
        // as "met exactly at the bound is fine".
        row.attained = worst_tte < 0 ? rule.horizon_seconds : worst_tte;
        row.met = row.attained >= rule.horizon_seconds;
        break;
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

JsonValue SloEngine::SlozDocument() const {
  const std::vector<SloAttainment> rows = Attainment();
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("ppdp.sloz.v1"));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    doc.Set("t_seconds", JsonValue::Number(last_eval_seconds_ < 0 ? 0.0 : last_eval_seconds_));
  }
  JsonValue slos = JsonValue::Array();
  for (const SloAttainment& row : rows) {
    JsonValue row_json = JsonValue::Object();
    row_json.Set("rule", JsonValue::String(row.rule));
    row_json.Set("signal", JsonValue::String(row.signal));
    if (!row.tenant.empty()) row_json.Set("tenant", JsonValue::String(row.tenant));
    row_json.Set("objective", JsonValue::Number(row.objective));
    row_json.Set("attained", JsonValue::Number(row.attained));
    row_json.Set("met", JsonValue::Bool(row.met));
    row_json.Set("events", JsonValue::Number(static_cast<double>(row.events)));
    slos.Append(std::move(row_json));
  }
  doc.Set("slos", std::move(slos));
  return doc;
}

uint64_t SloEngine::transitions_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transitions_total_;
}

Status ValidateAlertLogRecord(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("alert log record must be an object");
  const std::string schema = doc.GetStringOr("schema", "");
  if (schema != "ppdp.alertlog.v1") {
    return Status::InvalidArgument("alert log record schema must be ppdp.alertlog.v1, got '" +
                                   schema + "'");
  }
  if (doc.GetNumberOr("t_seconds", -1.0) < 0) {
    return Status::InvalidArgument("alert log record needs a non-negative t_seconds");
  }
  if (doc.GetStringOr("rule", "").empty()) {
    return Status::InvalidArgument("alert log record needs a rule name");
  }
  const std::string severity = doc.GetStringOr("severity", "");
  if (severity != "ticket" && severity != "page") {
    return Status::InvalidArgument("alert log record has unknown severity '" + severity + "'");
  }
  const std::string from = doc.GetStringOr("from", "");
  const std::string to = doc.GetStringOr("to", "");
  const bool legal = (to == "pending" && (from == "inactive" || from == "resolved")) ||
                     (to == "firing" && from == "pending") || (to == "resolved" && from == "firing");
  if (!legal) {
    return Status::InvalidArgument("alert log record has illegal transition '" + from + "' -> '" +
                                   to + "'");
  }
  if (doc.GetNumberOr("burn_fast", -1.0) < 0 || doc.GetNumberOr("burn_slow", -1.0) < 0) {
    return Status::InvalidArgument("alert log record needs non-negative burn rates");
  }
  return Status::Ok();
}

}  // namespace ppdp::obs
