#ifndef PPDP_OBS_HTTP_H_
#define PPDP_OBS_HTTP_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/result.h"

namespace ppdp::obs {

/// One parsed HTTP request as a routed handler sees it: the request line's
/// method and path (query string split off and decomposed into key/value
/// pairs) plus the raw body. Handlers that expect JSON call Json() — the
/// strict RFC 8259 parser in common/json.cc — instead of re-parsing by hand.
struct HttpRequest {
  std::string method;  ///< verbatim ("GET", "POST", ...)
  std::string path;    ///< without the query string
  std::map<std::string, std::string> query;
  /// General headers, names lowercased, values trimmed. First occurrence
  /// wins for repeated names (Content-Length duplicates are rejected at
  /// parse time; nothing else in this repo is list-valued).
  std::map<std::string, std::string> headers;
  std::string body;

  /// Parses the body as a complete JSON document.
  Result<JsonValue> Json() const { return JsonValue::Parse(body); }

  /// Query-parameter lookup with a fallback for absent/non-numeric values
  /// (the tolerance /profilez?seconds=bogus has always had).
  int QueryIntOr(const std::string& key, int fallback) const;
  std::string QueryStringOr(const std::string& key, const std::string& fallback) const;
  /// Header lookup by lowercased name; empty-string fallback when absent.
  std::string HeaderOr(const std::string& lower_name, const std::string& fallback) const;
};

/// Response builder handlers fill in: status code, content type, body. The
/// server renders the HTTP/1.1 framing (Content-Length, Connection: close)
/// so a handler can never emit a mis-framed response.
class HttpResponse {
 public:
  /// Defaults: 200, text/plain, empty body.
  HttpResponse() = default;

  void SetStatus(int status) { status_ = status; }
  void SetContentType(std::string content_type) { content_type_ = std::move(content_type); }
  void SetBody(std::string body) { body_ = std::move(body); }
  /// Adds (or replaces) an extra response header emitted before the fixed
  /// framing. Names must not collide with the framing headers the server
  /// owns (Content-Type, Content-Length, Connection) — those always win
  /// because they render last from the authoritative fields.
  void SetHeader(std::string name, std::string value) {
    extra_headers_[std::move(name)] = std::move(value);
  }

  /// One-call plain-text response ("text/plain; charset=utf-8").
  void Text(int status, std::string body);
  /// One-call JSON response: Dump()s `doc` with a trailing newline, exactly
  /// the framing the pre-routing endpoints emitted.
  void Json(int status, const JsonValue& doc);
  /// JSON response with an explicit pre-serialized body (for documents that
  /// are already strings, e.g. the flight-recorder ring).
  void RawJson(int status, std::string body);

  int status() const { return status_; }
  const std::string& content_type() const { return content_type_; }
  const std::string& body() const { return body_; }

  /// Full HTTP/1.1 wire bytes: status line, Content-Type, Content-Length,
  /// Connection: close, blank line, body.
  std::string Render() const;

 private:
  int status_ = 200;
  std::string content_type_ = "text/plain; charset=utf-8";
  std::string body_;
  std::map<std::string, std::string> extra_headers_;
};

/// A routed endpoint. Handlers run on server connection threads (or the
/// caller's thread via TelemetryServer::HandlePath) and must be thread-safe.
using HttpHandler = std::function<void(const HttpRequest&, HttpResponse*)>;

/// Reason phrase for the status codes the servers in this repo emit;
/// "Internal Server Error" for anything unrecognized.
const char* HttpStatusText(int status);

/// The parsed head (request line + header block) of an HTTP/1.1 request —
/// what the server knows before any body byte is read.
struct HttpRequestHead {
  std::string method;
  std::string path;    ///< without the query string
  std::map<std::string, std::string> query;
  /// General headers, names lowercased, values trimmed, first-wins on
  /// repeats. Content-Length is additionally parsed into the fields below.
  std::map<std::string, std::string> headers;
  size_t content_length = 0;   ///< 0 when absent
  bool has_content_length = false;
};

/// Strict parse of everything before the blank line: `head` is the raw
/// bytes up to (and excluding) the "\r\n\r\n" terminator. This is the one
/// request-parse surface — the telemetry server, the golden header tests,
/// and the HTTP fuzz harness all go through it.
///
/// Rejections (kInvalidArgument, message names the defect):
///  - a request line without "METHOD SP TARGET" (or with control bytes)
///  - a header line without a ':' or with an empty name
///  - a Content-Length that is non-numeric, signed, overflowing, or
///    repeated — even with equal values. First-wins parsing of duplicate
///    lengths is a request-smuggling primitive: two parsers that pick
///    different winners disagree about where the next request starts.
///  - any Transfer-Encoding header (chunked framing is not implemented, and
///    accepting the header while ignoring it would be the same smuggling
///    hazard).
Result<HttpRequestHead> ParseHttpRequestHead(std::string_view head);

/// Decomposes "a=1&b=two" into {{"a","1"},{"b","two"}}. No percent-decoding
/// — the telemetry surface never needed it and keeping the grammar small
/// keeps the parser auditable. Later duplicates of a key are ignored.
std::map<std::string, std::string> ParseQueryString(std::string_view query);

}  // namespace ppdp::obs

#endif  // PPDP_OBS_HTTP_H_
