#ifndef PPDP_OBS_PROFILER_H_
#define PPDP_OBS_PROFILER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "common/table.h"

namespace ppdp::obs {

/// ---- Process / thread resource probes (dependency-free) ----

/// Cumulative bytes the calling thread has allocated through the
/// replacement operator new (this library replaces the global allocation
/// functions to count; the count never decreases — it is an allocation
/// *rate* probe, not a live-heap gauge). Zero-cost to read, signal-free.
uint64_t ThreadAllocBytes();
/// Cumulative operator-new calls on the calling thread.
uint64_t ThreadAllocCalls();

struct ProcessMemory {
  uint64_t rss_bytes = 0;       ///< /proc/self/status VmRSS
  uint64_t peak_rss_bytes = 0;  ///< /proc/self/status VmHWM
};
/// Reads current and peak resident set size. Returns zeros where
/// /proc/self/status is unavailable.
ProcessMemory ReadProcessMemory();

/// Current RSS with a small rate limit: re-reads /proc at most every
/// `max_age_seconds`, otherwise returns the cached value — cheap enough to
/// call at every TraceSpan close.
uint64_t CurrentRssBytesCached(double max_age_seconds = 0.01);

struct ProcessCpu {
  double user_seconds = 0.0;
  double system_seconds = 0.0;
};
/// getrusage(RUSAGE_SELF) user/system split.
ProcessCpu ReadProcessCpu();

/// ---- The aggregated profile document ("ppdp.profile.v1") ----

/// One aggregated sampling profile: per-phase sample counts (a sample is
/// attributed to the innermost TraceSpan open on the sampled thread — the
/// same phase names the ppdp.bench.v1 reports use), top-N self/total frames
/// per phase, phase memory numbers merged from the TraceRecorder, and the
/// collapsed stacks a flamegraph renders.
struct CpuProfile {
  static constexpr int kSchemaVersion = 1;
  /// Document type tag ("ppdp.profile.v1").
  static const char* SchemaTag();

  std::string name;  ///< bench short name ("dp_synthesis"); may be empty
  int hz = 0;
  double duration_seconds = 0.0;
  int threads_profiled = 0;  ///< threads that contributed >= 1 sample
  uint64_t samples = 0;
  uint64_t dropped = 0;  ///< samples lost to full per-thread buffers
  std::string compiler;
  std::string build_type;

  struct FrameCount {
    std::string frame;  ///< demangled symbol or "[unknown]"
    uint64_t samples = 0;
  };

  struct Phase {
    std::string name;  ///< span name, or "(none)" for unattributed samples
    uint64_t samples = 0;
    double cpu_seconds = 0.0;  ///< samples / hz (the CPU-time estimate)
    uint64_t alloc_bytes = 0;      ///< from TraceRecorder phase stats
    uint64_t rss_peak_bytes = 0;   ///< from TraceRecorder phase stats
    std::vector<FrameCount> self_frames;   ///< top-N by leaf-frame samples
    std::vector<FrameCount> total_frames;  ///< top-N by any-frame presence
  };
  std::vector<Phase> phases;  ///< sorted by samples, descending

  /// One collapsed stack "phase;outermost;...;leaf" with its sample count —
  /// the flamegraph.pl / speedscope "folded" format, phase-rooted so flames
  /// group by the bench's own phase names.
  struct Stack {
    std::string stack;
    uint64_t count = 0;
  };
  std::vector<Stack> stacks;       ///< sorted by count desc, capped
  uint64_t stacks_truncated = 0;   ///< unique stacks dropped by the cap

  /// Frames listed per phase and unique stacks retained in the document.
  static constexpr size_t kTopFrames = 10;
  static constexpr size_t kMaxStacks = 512;

  JsonValue ToJson() const;
  Status WriteJson(const std::string& path) const;
  /// Collapsed folded-stack text, one "stack count" line per unique stack.
  Status WriteFolded(const std::string& path) const;
  static Result<CpuProfile> FromJson(const JsonValue& doc);
  static Result<CpuProfile> Load(const std::string& path);

  /// phase | samples | cpu s | alloc MB | peak rss MB | top self frame.
  Table PhaseTable() const;
  /// frame | phase | self samples | share, flattened top `n` self frames.
  Table TopFramesTable(size_t n = 20) const;
};

/// Checks the invariants ppdp_profstat and CI rely on: schema tag/version,
/// required keys with the right kinds, well-formed phase and stack entries.
Status ValidateProfileJson(const JsonValue& doc);

/// ---- ppdp_profstat: frame-level diff between two profiles ----

struct ProfileDiffOptions {
  /// Relative growth of a frame's self-sample *share* tolerated before the
  /// frame counts as regressed (0.75 = +75%).
  double threshold = 0.75;
  /// The share must additionally grow by this many absolute percentage
  /// points (0.02 = 2pp) — sub-noise frames can triple without meaning.
  double min_share = 0.02;
};

struct FrameDelta {
  std::string frame;
  double baseline_share = 0.0;  ///< self samples / profile samples
  double current_share = 0.0;
  double ratio = 0.0;  ///< current / baseline share (0 when baseline is 0)
  bool regressed = false;
  bool only_in_baseline = false;
  bool only_in_current = false;
};

struct ProfileDiff {
  std::vector<FrameDelta> frames;  ///< baseline share order, then new frames
  bool regressed = false;
  /// frame | baseline % | current % | ratio | verdict table.
  Table Summary() const;
};

/// Diffs self-frame shares aggregated across phases. Frames present on only
/// one side are reported but never count as regressions (code evolves);
/// share growth beyond both thresholds does.
ProfileDiff DiffProfiles(const CpuProfile& baseline, const CpuProfile& current,
                         const ProfileDiffOptions& options);

/// ---- The sampling engine ----

/// Registers the calling thread with the profiler for its lifetime: records
/// its tid and stack bounds, touches its TLS (signal safety), and — when a
/// capture is already running — arms a per-thread CPU-time timer so the
/// thread is sampled immediately. Worker threads in exec::ThreadPool hold
/// one of these for their whole loop. Cheap when profiling is off: one
/// mutex-guarded registry insert, no timer, no buffer.
class ProfiledThreadScope {
 public:
  ProfiledThreadScope();
  ProfiledThreadScope(const ProfiledThreadScope&) = delete;
  ProfiledThreadScope& operator=(const ProfiledThreadScope&) = delete;
  ~ProfiledThreadScope();

 private:
  bool owned_;  ///< false when the thread was already registered (nesting)
};

/// Signal-based sampling CPU profiler. Off by default — a process that
/// never calls Start pays nothing beyond thread registration. When running,
/// every registered thread owns a POSIX per-thread timer on its own CPU
/// clock (pthread_getcpuclockid) that delivers SIGPROF at `hz` samples per second
/// *of CPU time consumed by that thread* (idle threads are never sampled),
/// and the handler captures a frame-pointer backtrace plus the innermost
/// open TraceSpan id into a pre-allocated per-thread buffer. Everything the
/// handler touches is async-signal-safe: thread-local atomics and raw
/// memory, no locks, no allocation, no syscalls. Symbolization (dladdr +
/// __cxa_demangle) happens offline in Collect().
class Profiler {
 public:
  struct Options {
    /// Samples per second of per-thread CPU time. Prime rates (97, 211)
    /// avoid lock-step with periodic work.
    int hz = 97;
  };

  /// Samples each thread can buffer per capture; at 97 Hz this is ~84 s of
  /// fully-busy thread time. Overflow drops samples (counted, reported).
  static constexpr size_t kMaxSamplesPerThread = 1 << 13;
  /// Deepest recorded backtrace; deeper stacks are truncated at the leaf end.
  static constexpr size_t kMaxFrames = 48;

  static Profiler& Global();

  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Installs the SIGPROF handler (first call), allocates buffers, and arms
  /// a timer for every registered thread. Fails when already running or
  /// `hz` is out of [1, 10000].
  Status Start(const Options& options);

  /// Disarms all timers. Samples are retained for Collect. Idempotent.
  void Stop();

  bool running() const;
  int hz() const;
  uint64_t samples_recorded() const;  ///< across all threads, this capture
  uint64_t samples_dropped() const;
  size_t threads_registered() const;

  /// Aggregates and symbolizes everything sampled since Start into a
  /// CpuProfile (phase attribution via the TraceSpan id recorded with every
  /// sample; per-phase memory merged from the global TraceRecorder). Safe
  /// to call mid-capture — it snapshots what each thread has published so
  /// far, which is how /profilez serves a live profile.
  CpuProfile Collect(const std::string& name = "") const;

  /// Forgets all buffered samples (the next capture starts clean).
  /// Must not be called while running.
  void ClearSamples();

 private:
  friend class ProfiledThreadScope;
};

}  // namespace ppdp::obs

#endif  // PPDP_OBS_PROFILER_H_
