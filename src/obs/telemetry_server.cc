#include "obs/telemetry_server.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace ppdp::obs {

namespace {

/// Registered /statusz extension sections (key -> provider).
struct StatuszSections {
  std::mutex mutex;
  std::map<std::string, std::function<JsonValue()>> providers;

  static StatuszSections& Global() {
    static StatuszSections* sections = new StatuszSections();  // intentionally leaked
    return *sections;
  }
};

/// Serializes /profilez captures: a second concurrent request gets a 503
/// instead of fighting over the one global profiler.
std::mutex& ProfilezMutex() {
  static std::mutex* mutex = new std::mutex();  // intentionally leaked
  return *mutex;
}

/// Route-prefix match: exact, or a '/'-separated extension of the prefix.
/// "/v1/publish" claims "/v1/publish" and "/v1/publish/x", never
/// "/v1/publisher".
bool PrefixClaims(const std::string& prefix, const std::string& path) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  if (path.size() == prefix.size()) return true;
  return prefix.back() == '/' || path[prefix.size()] == '/';
}

/// Outcome of a deadline-bounded socket read.
enum class RecvVerdict { kData, kClosed, kTimeout };

/// Poll-bounded recv against an absolute MonotonicSeconds deadline. The
/// deadline covers the WHOLE read (every call shares it), so a client
/// trickling one byte per poll interval cannot keep the connection alive
/// the way it could against a per-recv SO_RCVTIMEO.
RecvVerdict RecvWithDeadline(int fd, char* buffer, size_t cap, double deadline, ssize_t* n_out) {
  while (true) {
    const double remaining = deadline - MonotonicSeconds();
    if (remaining <= 0.0) return RecvVerdict::kTimeout;
    pollfd pfd{fd, POLLIN, 0};
    const int timeout_ms = static_cast<int>(std::min(remaining * 1000.0 + 1.0, 2.0e9));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return RecvVerdict::kClosed;
    }
    if (ready == 0) return RecvVerdict::kTimeout;
    const ssize_t n = ::recv(fd, buffer, cap, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) return RecvVerdict::kClosed;
    *n_out = n;
    return RecvVerdict::kData;
  }
}

/// Deadline-bounded full write; MSG_NOSIGNAL keeps a client that hung up
/// from killing the process with SIGPIPE. Returns false when the peer
/// stopped draining before the deadline (the write-timeout counterpart of
/// the slow-loris read defense).
bool SendAll(int fd, const std::string& data, double deadline) {
  size_t sent = 0;
  while (sent < data.size()) {
    const double remaining = deadline - MonotonicSeconds();
    if (remaining <= 0.0) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int timeout_ms = static_cast<int>(std::min(remaining * 1000.0 + 1.0, 2.0e9));
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (ready == 0) return false;
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) return false;  // peer gone or socket shut down — nothing to salvage
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string PlainResponse(int status, const std::string& body) {
  HttpResponse response;
  response.Text(status, body);
  return response.Render();
}

/// Structured error body (the ppdp.serve.error.v1 envelope the serve layer
/// uses) for the protocol-level refusals this server emits itself, so a
/// JSON client parses one error shape at every layer.
std::string EnvelopeResponse(int status, const std::string& error) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("ppdp.serve.error.v1"));
  doc.Set("error", JsonValue::String(error));
  HttpResponse response;
  response.Json(status, doc);
  return response.Render();
}

}  // namespace

void RegisterStatuszSection(const std::string& key, std::function<JsonValue()> provider) {
  StatuszSections& sections = StatuszSections::Global();
  std::lock_guard<std::mutex> lock(sections.mutex);
  sections.providers[key] = std::move(provider);
}

void ClearStatuszSections() {
  StatuszSections& sections = StatuszSections::Global();
  std::lock_guard<std::mutex> lock(sections.mutex);
  sections.providers.clear();
}

bool TelemetryDegraded() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.counter("channel.gave_up").value() > 0) return true;
  if (registry.counter("iot.server.degraded_estimates").value() > 0) return true;
  for (const auto& [name, snapshot] : PrivacyLedger::SnapshotAll()) {
    if (snapshot.rejected > 0) return true;
  }
  return false;
}

TelemetryServer::TelemetryServer(Options options) : options_(std::move(options)) {
  RegisterBuiltinRoutes();
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::RegisterHandler(const std::string& method, const std::string& path_prefix,
                                      HttpHandler handler) {
  auto shared = std::make_shared<HttpHandler>(std::move(handler));
  std::lock_guard<std::mutex> lock(routes_mutex_);
  for (Route& route : routes_) {
    if (route.method == method && route.prefix == path_prefix) {
      route.handler = std::move(shared);
      return;
    }
  }
  routes_.push_back(Route{method, path_prefix, std::move(shared)});
}

void TelemetryServer::RegisterBuiltinRoutes() {
  RegisterHandler("GET", "/metrics", [](const HttpRequest&, HttpResponse* response) {
    response->SetStatus(200);
    response->SetContentType("text/plain; version=0.0.4; charset=utf-8");
    response->SetBody(MetricsRegistry::Global().ToPrometheus());
  });
  RegisterHandler("GET", "/healthz", [](const HttpRequest&, HttpResponse* response) {
    response->Text(200, TelemetryDegraded() ? "degraded\n" : "ok\n");
  });
  RegisterHandler("GET", "/statusz", [this](const HttpRequest&, HttpResponse* response) {
    response->RawJson(200, StatuszDocument().Dump() + "\n");
  });
  RegisterHandler("GET", "/flightz", [](const HttpRequest&, HttpResponse* response) {
    response->RawJson(200, FlightRecorder::Global().ToJson("flightz") + "\n");
  });
  RegisterHandler("GET", "/profilez", [this](const HttpRequest& request, HttpResponse* response) {
    HandleProfilez(request, response);
  });
  // The index owns the "/" prefix, which — by the longest-prefix rule —
  // also makes it the fallback for every path no other route claims; it
  // answers those with the 404 the server has always produced.
  RegisterHandler("GET", "/", [](const HttpRequest& request, HttpResponse* response) {
    if (request.path != "/" && !request.path.empty()) {
      response->Text(404, "not found: " + request.path + "\n");
      return;
    }
    response->Text(200,
                   "ppdp telemetry endpoints:\n"
                   "  /metrics   Prometheus text exposition 0.0.4\n"
                   "  /healthz   liveness + degraded flag\n"
                   "  /statusz   live process status (JSON)\n"
                   "  /flightz   flight-recorder ring (JSON)\n"
                   "  /profilez  on-demand CPU profile (JSON; ?seconds=N&hz=M)\n");
  });
}

void TelemetryServer::HandleProfilez(const HttpRequest& request, HttpResponse* response) const {
  Profiler& profiler = Profiler::Global();
  if (profiler.running()) {
    // A capture is already live (--profile_hz or another client): serve a
    // snapshot of what it has gathered so far without disturbing it.
    response->RawJson(200, profiler.Collect("profilez").ToJson().Dump() + "\n");
    return;
  }
  std::unique_lock<std::mutex> capture_lock(ProfilezMutex(), std::try_to_lock);
  if (!capture_lock.owns_lock()) {
    response->Text(503, "profile capture already in progress\n");
    return;
  }
  int seconds = request.QueryIntOr("seconds", 1);
  if (seconds < 1) seconds = 1;
  if (seconds > 30) seconds = 30;
  Profiler::Options profiler_options;
  profiler_options.hz = request.QueryIntOr("hz", 97);
  Status start_status = profiler.Start(profiler_options);
  if (!start_status.ok()) {
    response->Text(503, "profiler unavailable: " + start_status.ToString() + "\n");
    return;
  }
  // Interruptible wait: server shutdown must not block on a capture.
  for (int i = 0; i < seconds * 10 && !stopping_.load(std::memory_order_acquire); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  profiler.Stop();
  CpuProfile profile = profiler.Collect("profilez");
  profiler.ClearSamples();  // leave the global profiler clean for --profile_hz runs
  response->RawJson(200, profile.ToJson().Dump() + "\n");
}

Status TelemetryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("telemetry server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("telemetry port must be in [0, 65535]");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("telemetry max_connections must be >= 1");
  }
  if (options_.max_request_body_bytes < 1) {
    return Status::InvalidArgument("telemetry max_request_body_bytes must be >= 1");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("telemetry socket(): ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // introspection stays local
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(std::string("telemetry bind(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status =
        Status::Unavailable(std::string("telemetry listen(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status =
        Status::Unavailable(std::string("telemetry getsockname(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }

  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  start_seconds_ = MonotonicSeconds();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PPDP_LOG(INFO) << "telemetry server listening" << Field("port", port());
  return Status::Ok();
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock the accept loop: poll() notices stopping_ within its timeout,
  // and shutting the listening socket down makes any racing accept fail
  // immediately instead of handing us one last connection.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every in-flight connection out of its blocking read/write, then
  // wait for the handlers to finish — no thread outlives Stop.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  ReapConnections(/*all=*/true);
  PPDP_LOG(INFO) << "telemetry server stopped";
}

void TelemetryServer::ReapConnections(bool all) {
  std::list<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
    // The fd is closed only here, after the join: the handler thread never
    // touches Connection::fd's value, so Stop can safely shutdown() every
    // still-listed connection without racing a close.
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
}

void TelemetryServer::AcceptLoop() {
  static Counter& rejected =
      MetricsRegistry::Global().counter("telemetry.rejected_connections");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    timeval timeout{};
    timeout.tv_sec = static_cast<time_t>(options_.read_timeout_seconds);
    timeout.tv_usec = static_cast<suseconds_t>(
        (options_.read_timeout_seconds - static_cast<double>(timeout.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    ReapConnections(/*all=*/false);
    size_t active;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      active = connections_.size();
    }
    if (active >= static_cast<size_t>(options_.max_connections)) {
      // Fast-fail under load: a scrape storm gets an immediate structured
      // 503 rather than an unbounded pile of handler threads.
      rejected.Increment();
      SendAll(fd, EnvelopeResponse(503, "telemetry connection limit reached"),
              MonotonicSeconds() + options_.write_timeout_seconds);
      ::close(fd);
      continue;
    }

    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

void TelemetryServer::HandleConnection(Connection* connection) {
  static Counter& scrapes = MetricsRegistry::Global().counter("telemetry.requests");
  static Counter& read_timeouts = MetricsRegistry::Global().counter("telemetry.read_timeouts");
  static Counter& write_timeouts = MetricsRegistry::Global().counter("telemetry.write_timeouts");
  // One absolute deadline covers the whole request read: request line,
  // headers, and body. Trickling bytes cannot extend it (slow-loris).
  const double read_deadline = MonotonicSeconds() + options_.read_timeout_seconds;
  const double write_deadline = read_deadline + options_.write_timeout_seconds;

  std::string request;
  char buffer[1024];
  bool timed_out = false;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() <= options_.max_header_bytes) {
    ssize_t n = 0;
    const RecvVerdict verdict =
        RecvWithDeadline(connection->fd, buffer, sizeof(buffer), read_deadline, &n);
    if (verdict == RecvVerdict::kTimeout) {
      timed_out = true;
      break;
    }
    if (verdict == RecvVerdict::kClosed) break;  // EOF or shutdown from Stop()
    request.append(buffer, static_cast<size_t>(n));
  }

  const size_t header_end = request.find("\r\n\r\n");
  std::string response;
  if (timed_out) {
    // The header section never completed within the deadline — whether the
    // client sent nothing or dripped one byte at a time.
    read_timeouts.Increment();
    response = EnvelopeResponse(408, "read deadline exceeded");
  } else if (header_end == std::string::npos) {
    if (request.size() > options_.max_header_bytes) {
      response = EnvelopeResponse(431, "header section exceeds " +
                                           std::to_string(options_.max_header_bytes) + " bytes");
    } else if (!request.empty()) {
      // Bytes arrived but the header never terminated (client hung up
      // mid-request): answer with a proper error instead of silently
      // hanging up ourselves.
      response = PlainResponse(400, "incomplete request\n");
    }
  } else {
    Result<HttpRequestHead> head = ParseHttpRequestHead(
        std::string_view(request).substr(0, header_end));
    if (!head.ok()) {
      // A garbled request line or smuggling-shaped headers (duplicate /
      // non-numeric Content-Length, Transfer-Encoding) are the client's
      // fault, not an unsupported method: 400, not 405.
      response = PlainResponse(400, head.status().message() + "\n");
    } else if (head->content_length > options_.max_request_body_bytes) {
      // Refuse before reading: the declared size alone is grounds for 413,
      // so an oversized upload never occupies buffer memory.
      response = PlainResponse(413, "request body exceeds " +
                                        std::to_string(options_.max_request_body_bytes) +
                                        " bytes\n");
    } else {
      const size_t body_bytes = head->content_length;
      const size_t total = header_end + 4 + body_bytes;
      while (request.size() < total) {
        ssize_t n = 0;
        const RecvVerdict verdict =
            RecvWithDeadline(connection->fd, buffer,
                             std::min(sizeof(buffer), total - request.size()), read_deadline, &n);
        if (verdict == RecvVerdict::kTimeout) {
          timed_out = true;
          break;
        }
        if (verdict == RecvVerdict::kClosed) break;
        request.append(buffer, static_cast<size_t>(n));
      }
      if (timed_out) {
        read_timeouts.Increment();
        response = EnvelopeResponse(408, "read deadline exceeded");
      } else if (request.size() < total) {
        response = PlainResponse(400, "incomplete request body\n");
      } else {
        HttpRequest parsed;
        parsed.method = std::move(head->method);
        parsed.path = std::move(head->path);
        parsed.query = std::move(head->query);
        parsed.headers = std::move(head->headers);
        parsed.body = request.substr(header_end + 4, body_bytes);
        response = Dispatch(parsed).Render();
        scrapes.Increment();
      }
    }
  }
  if (!response.empty() && !SendAll(connection->fd, response, write_deadline)) {
    write_timeouts.Increment();
  }

  // ReapConnections closes the fd after joining this thread; closing here
  // would race Stop()'s shutdown of the same descriptor.
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
}

HttpResponse TelemetryServer::Dispatch(const HttpRequest& request) const {
  // An empty path (HandlePath("")) has always meant the index.
  HttpRequest normalized;
  const HttpRequest* effective = &request;
  if (request.path.empty()) {
    normalized = request;
    normalized.path = "/";
    effective = &normalized;
  }

  std::shared_ptr<HttpHandler> handler;
  bool path_claimed = false;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    // Longest claiming prefix wins; among routes tied at that prefix the
    // method must match, otherwise the request is answered 405.
    size_t best_len = 0;
    for (const Route& route : routes_) {
      if (!PrefixClaims(route.prefix, effective->path)) continue;
      path_claimed = true;
      if (route.prefix.size() > best_len) {
        best_len = route.prefix.size();
        handler = nullptr;
      }
      if (route.prefix.size() == best_len && route.method == effective->method) {
        handler = route.handler;
      }
    }
  }

  HttpResponse response;
  if (handler != nullptr) {
    (*handler)(*effective, &response);
  } else if (path_claimed) {
    response.Text(405, "method not allowed: " + effective->method + "\n");
  } else {
    response.Text(404, "not found: " + effective->path + "\n");
  }
  return response;
}

std::string TelemetryServer::HandlePath(const std::string& request_path, int* http_status,
                                        std::string* content_type) const {
  HttpRequest request;
  request.method = "GET";
  request.path = request_path;
  if (const size_t q = request.path.find('?'); q != std::string::npos) {
    request.query = ParseQueryString(std::string_view(request.path).substr(q + 1));
    request.path.resize(q);
  }
  HttpResponse response = Dispatch(request);
  *http_status = response.status();
  *content_type = response.content_type();
  return response.body();
}

JsonValue TelemetryServer::StatuszDocument() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("ppdp.statusz.v1"));
  doc.Set("uptime_seconds", JsonValue::Number(MonotonicSeconds() - start_seconds_));
  doc.Set("degraded", JsonValue::Bool(TelemetryDegraded()));

  RunReport::BuildInfo build = CurrentBuildInfo();
  JsonValue build_json = JsonValue::Object();
  build_json.Set("compiler", JsonValue::String(build.compiler));
  build_json.Set("build_type", JsonValue::String(build.build_type));
  build_json.Set("platform", JsonValue::String(build.platform));
  build_json.Set("cxx_standard", JsonValue::Number(static_cast<double>(build.cxx_standard)));
  doc.Set("build", build_json);

  JsonValue flags = JsonValue::Object();
  for (const auto& [key, value] : options_.flags) flags.Set(key, JsonValue::String(value));
  doc.Set("flags", flags);
  doc.Set("seed", JsonValue::Number(static_cast<double>(options_.seed)));
  doc.Set("threads", JsonValue::Number(static_cast<double>(options_.threads)));

  JsonValue ledgers = JsonValue::Array();
  for (const auto& [name, snapshot] : PrivacyLedger::SnapshotAll()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(name));
    entry.Set("budget", JsonValue::Number(snapshot.budget));
    entry.Set("spent", JsonValue::Number(snapshot.spent));
    entry.Set("remaining", JsonValue::Number(snapshot.remaining));
    entry.Set("rejected", JsonValue::Number(static_cast<double>(snapshot.rejected)));
    ledgers.Append(std::move(entry));
  }
  doc.Set("ledgers", ledgers);

  JsonValue spans = JsonValue::Array();
  for (const ActiveSpanStack& stack : ActiveSpanStacks()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("thread", JsonValue::Number(static_cast<double>(stack.thread)));
    JsonValue names = JsonValue::Array();
    for (const std::string& name : stack.spans) names.Append(JsonValue::String(name));
    entry.Set("spans", names);
    spans.Append(std::move(entry));
  }
  doc.Set("active_spans", spans);

  {
    StatuszSections& sections = StatuszSections::Global();
    std::lock_guard<std::mutex> lock(sections.mutex);
    for (const auto& [key, provider] : sections.providers) {
      doc.Set(key, provider());
    }
  }

  FlightRecorder& recorder = FlightRecorder::Global();
  JsonValue flight = JsonValue::Object();
  flight.Set("recorded", JsonValue::Number(static_cast<double>(recorder.total_recorded())));
  flight.Set("retained", JsonValue::Number(static_cast<double>(recorder.size())));
  flight.Set("dumped", JsonValue::Bool(recorder.dumped()));
  doc.Set("flight", flight);

  Profiler& profiler = Profiler::Global();
  JsonValue profiler_json = JsonValue::Object();
  profiler_json.Set("running", JsonValue::Bool(profiler.running()));
  profiler_json.Set("hz", JsonValue::Number(profiler.hz()));
  profiler_json.Set("threads_registered",
                    JsonValue::Number(static_cast<double>(profiler.threads_registered())));
  profiler_json.Set("samples", JsonValue::Number(static_cast<double>(profiler.samples_recorded())));
  profiler_json.Set("dropped", JsonValue::Number(static_cast<double>(profiler.samples_dropped())));
  doc.Set("profiler", profiler_json);

  ProcessMemory memory = ReadProcessMemory();
  ProcessCpu cpu = ReadProcessCpu();
  JsonValue process = JsonValue::Object();
  process.Set("rss_bytes", JsonValue::Number(static_cast<double>(memory.rss_bytes)));
  process.Set("peak_rss_bytes", JsonValue::Number(static_cast<double>(memory.peak_rss_bytes)));
  process.Set("cpu_user_seconds", JsonValue::Number(cpu.user_seconds));
  process.Set("cpu_system_seconds", JsonValue::Number(cpu.system_seconds));
  doc.Set("process", process);
  return doc;
}

}  // namespace ppdp::obs
