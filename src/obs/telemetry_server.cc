#include "obs/telemetry_server.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/ledger.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace ppdp::obs {

namespace {

/// Registered /statusz extension sections (key -> provider).
struct StatuszSections {
  std::mutex mutex;
  std::map<std::string, std::function<JsonValue()>> providers;

  static StatuszSections& Global() {
    static StatuszSections* sections = new StatuszSections();  // intentionally leaked
    return *sections;
  }
};

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

/// Serializes /profilez captures: a second concurrent request gets a 503
/// instead of fighting over the one global profiler.
std::mutex& ProfilezMutex() {
  static std::mutex* mutex = new std::mutex();  // intentionally leaked
  return *mutex;
}

/// Value of `key` in an HTTP query string ("seconds=2&hz=97"), or
/// `fallback` when absent/non-numeric.
int QueryIntOr(const std::string& query, const std::string& key, int fallback) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string pair = query.substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      errno = 0;
      char* rest = nullptr;
      long value = std::strtol(pair.c_str() + eq + 1, &rest, 10);
      if (errno == 0 && rest != pair.c_str() + eq + 1 && *rest == '\0') {
        return static_cast<int>(value);
      }
      return fallback;
    }
    pos = end + 1;
  }
  return fallback;
}

std::string RenderResponse(int status, const std::string& content_type,
                           const std::string& body) {
  std::string response = "HTTP/1.1 " + std::to_string(status) + " " + StatusText(status) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n";
  response += body;
  return response;
}

/// Writes the whole buffer; MSG_NOSIGNAL keeps a client that hung up from
/// killing the process with SIGPIPE.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone or socket shut down — nothing to salvage
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

void RegisterStatuszSection(const std::string& key, std::function<JsonValue()> provider) {
  StatuszSections& sections = StatuszSections::Global();
  std::lock_guard<std::mutex> lock(sections.mutex);
  sections.providers[key] = std::move(provider);
}

void ClearStatuszSections() {
  StatuszSections& sections = StatuszSections::Global();
  std::lock_guard<std::mutex> lock(sections.mutex);
  sections.providers.clear();
}

bool TelemetryDegraded() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  if (registry.counter("channel.gave_up").value() > 0) return true;
  if (registry.counter("iot.server.degraded_estimates").value() > 0) return true;
  for (const auto& [name, snapshot] : PrivacyLedger::SnapshotAll()) {
    if (snapshot.rejected > 0) return true;
  }
  return false;
}

TelemetryServer::TelemetryServer(Options options) : options_(std::move(options)) {}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("telemetry server already started");
  }
  if (options_.port < 0 || options_.port > 65535) {
    return Status::InvalidArgument("telemetry port must be in [0, 65535]");
  }
  if (options_.max_connections < 1) {
    return Status::InvalidArgument("telemetry max_connections must be >= 1");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("telemetry socket(): ") + std::strerror(errno));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // introspection stays local
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status = Status::Unavailable(std::string("telemetry bind(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status =
        Status::Unavailable(std::string("telemetry listen(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    Status status =
        Status::Unavailable(std::string("telemetry getsockname(): ") + std::strerror(errno));
    ::close(fd);
    return status;
  }

  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  start_seconds_ = MonotonicSeconds();
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  PPDP_LOG(INFO) << "telemetry server listening" << Field("port", port());
  return Status::Ok();
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock the accept loop: poll() notices stopping_ within its timeout,
  // and shutting the listening socket down makes any racing accept fail
  // immediately instead of handing us one last connection.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Kick every in-flight connection out of its blocking read/write, then
  // wait for the handlers to finish — no thread outlives Stop.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) {
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  ReapConnections(/*all=*/true);
  PPDP_LOG(INFO) << "telemetry server stopped";
}

void TelemetryServer::ReapConnections(bool all) {
  std::list<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
    // The fd is closed only here, after the join: the handler thread never
    // touches Connection::fd's value, so Stop can safely shutdown() every
    // still-listed connection without racing a close.
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
}

void TelemetryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    timeval timeout{};
    timeout.tv_sec = static_cast<time_t>(options_.read_timeout_seconds);
    timeout.tv_usec = static_cast<suseconds_t>(
        (options_.read_timeout_seconds - static_cast<double>(timeout.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    ReapConnections(/*all=*/false);
    size_t active;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      active = connections_.size();
    }
    if (active >= static_cast<size_t>(options_.max_connections)) {
      // Fast-fail under load: a scrape storm gets an immediate 503 rather
      // than an unbounded pile of handler threads.
      SendAll(fd, RenderResponse(503, "text/plain; charset=utf-8",
                                 "telemetry connection limit reached\n"));
      ::close(fd);
      continue;
    }

    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
  }
}

void TelemetryServer::HandleConnection(Connection* connection) {
  static Counter& scrapes = MetricsRegistry::Global().counter("telemetry.requests");
  constexpr size_t kMaxRequestBytes = 8192;
  std::string request;
  char buffer[1024];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < kMaxRequestBytes) {
    ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;  // EOF, timeout, or shutdown from Stop()
    request.append(buffer, static_cast<size_t>(n));
  }

  const size_t header_end = request.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    const size_t line_end = request.find("\r\n");
    const std::string line = request.substr(0, line_end);
    const size_t first_space = line.find(' ');
    const size_t second_space =
        first_space == std::string::npos ? std::string::npos : line.find(' ', first_space + 1);
    std::string response;
    if (first_space == std::string::npos || second_space == std::string::npos) {
      // A garbled request line is the client's fault, not an unsupported
      // method: 400, not 405.
      response = RenderResponse(400, "text/plain; charset=utf-8", "malformed request line\n");
    } else {
      const std::string method = line.substr(0, first_space);
      // The query string travels with the path; HandlePath splits it so
      // endpoints like /profilez?seconds=N see their parameters.
      const std::string path = line.substr(first_space + 1, second_space - first_space - 1);
      if (method != "GET") {
        response = RenderResponse(405, "text/plain; charset=utf-8", "only GET is supported\n");
      } else {
        int status = 200;
        std::string content_type;
        std::string body = HandlePath(path, &status, &content_type);
        response = RenderResponse(status, content_type, body);
        scrapes.Increment();
      }
    }
    SendAll(connection->fd, response);
  } else if (!request.empty()) {
    // Bytes arrived but the header never terminated (truncated or oversized
    // request): answer with a proper error instead of silently hanging up.
    SendAll(connection->fd,
            RenderResponse(400, "text/plain; charset=utf-8", "incomplete request\n"));
  }

  // ReapConnections closes the fd after joining this thread; closing here
  // would race Stop()'s shutdown of the same descriptor.
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->done.store(true, std::memory_order_release);
}

std::string TelemetryServer::HandlePath(const std::string& request_path, int* http_status,
                                        std::string* content_type) const {
  *http_status = 200;
  std::string path = request_path;
  std::string query;
  if (const size_t q = path.find('?'); q != std::string::npos) {
    query = path.substr(q + 1);
    path.resize(q);
  }
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return MetricsRegistry::Global().ToPrometheus();
  }
  if (path == "/healthz") {
    *content_type = "text/plain; charset=utf-8";
    return TelemetryDegraded() ? "degraded\n" : "ok\n";
  }
  if (path == "/statusz") {
    *content_type = "application/json";
    return StatuszDocument().Dump() + "\n";
  }
  if (path == "/flightz") {
    *content_type = "application/json";
    return FlightRecorder::Global().ToJson("flightz") + "\n";
  }
  if (path == "/profilez") {
    *content_type = "application/json";
    Profiler& profiler = Profiler::Global();
    if (profiler.running()) {
      // A capture is already live (--profile_hz or another client): serve a
      // snapshot of what it has gathered so far without disturbing it.
      return profiler.Collect("profilez").ToJson().Dump() + "\n";
    }
    std::unique_lock<std::mutex> capture_lock(ProfilezMutex(), std::try_to_lock);
    if (!capture_lock.owns_lock()) {
      *http_status = 503;
      *content_type = "text/plain; charset=utf-8";
      return "profile capture already in progress\n";
    }
    int seconds = QueryIntOr(query, "seconds", 1);
    if (seconds < 1) seconds = 1;
    if (seconds > 30) seconds = 30;
    int hz = QueryIntOr(query, "hz", 97);
    Profiler::Options profiler_options;
    profiler_options.hz = hz;
    Status start_status = profiler.Start(profiler_options);
    if (!start_status.ok()) {
      *http_status = 503;
      *content_type = "text/plain; charset=utf-8";
      return "profiler unavailable: " + start_status.ToString() + "\n";
    }
    // Interruptible wait: server shutdown must not block on a capture.
    for (int i = 0; i < seconds * 10 && !stopping_.load(std::memory_order_acquire); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    profiler.Stop();
    CpuProfile profile = profiler.Collect("profilez");
    profiler.ClearSamples();  // leave the global profiler clean for --profile_hz runs
    return profile.ToJson().Dump() + "\n";
  }
  if (path == "/" || path.empty()) {
    *content_type = "text/plain; charset=utf-8";
    return "ppdp telemetry endpoints:\n"
           "  /metrics   Prometheus text exposition 0.0.4\n"
           "  /healthz   liveness + degraded flag\n"
           "  /statusz   live process status (JSON)\n"
           "  /flightz   flight-recorder ring (JSON)\n"
           "  /profilez  on-demand CPU profile (JSON; ?seconds=N&hz=M)\n";
  }
  *http_status = 404;
  *content_type = "text/plain; charset=utf-8";
  return "not found: " + path + "\n";
}

JsonValue TelemetryServer::StatuszDocument() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::String("ppdp.statusz.v1"));
  doc.Set("uptime_seconds", JsonValue::Number(MonotonicSeconds() - start_seconds_));
  doc.Set("degraded", JsonValue::Bool(TelemetryDegraded()));

  RunReport::BuildInfo build = CurrentBuildInfo();
  JsonValue build_json = JsonValue::Object();
  build_json.Set("compiler", JsonValue::String(build.compiler));
  build_json.Set("build_type", JsonValue::String(build.build_type));
  build_json.Set("platform", JsonValue::String(build.platform));
  build_json.Set("cxx_standard", JsonValue::Number(static_cast<double>(build.cxx_standard)));
  doc.Set("build", build_json);

  JsonValue flags = JsonValue::Object();
  for (const auto& [key, value] : options_.flags) flags.Set(key, JsonValue::String(value));
  doc.Set("flags", flags);
  doc.Set("seed", JsonValue::Number(static_cast<double>(options_.seed)));
  doc.Set("threads", JsonValue::Number(static_cast<double>(options_.threads)));

  JsonValue ledgers = JsonValue::Array();
  for (const auto& [name, snapshot] : PrivacyLedger::SnapshotAll()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::String(name));
    entry.Set("budget", JsonValue::Number(snapshot.budget));
    entry.Set("spent", JsonValue::Number(snapshot.spent));
    entry.Set("remaining", JsonValue::Number(snapshot.remaining));
    entry.Set("rejected", JsonValue::Number(static_cast<double>(snapshot.rejected)));
    ledgers.Append(std::move(entry));
  }
  doc.Set("ledgers", ledgers);

  JsonValue spans = JsonValue::Array();
  for (const ActiveSpanStack& stack : ActiveSpanStacks()) {
    JsonValue entry = JsonValue::Object();
    entry.Set("thread", JsonValue::Number(static_cast<double>(stack.thread)));
    JsonValue names = JsonValue::Array();
    for (const std::string& name : stack.spans) names.Append(JsonValue::String(name));
    entry.Set("spans", names);
    spans.Append(std::move(entry));
  }
  doc.Set("active_spans", spans);

  {
    StatuszSections& sections = StatuszSections::Global();
    std::lock_guard<std::mutex> lock(sections.mutex);
    for (const auto& [key, provider] : sections.providers) {
      doc.Set(key, provider());
    }
  }

  FlightRecorder& recorder = FlightRecorder::Global();
  JsonValue flight = JsonValue::Object();
  flight.Set("recorded", JsonValue::Number(static_cast<double>(recorder.total_recorded())));
  flight.Set("retained", JsonValue::Number(static_cast<double>(recorder.size())));
  flight.Set("dumped", JsonValue::Bool(recorder.dumped()));
  doc.Set("flight", flight);

  Profiler& profiler = Profiler::Global();
  JsonValue profiler_json = JsonValue::Object();
  profiler_json.Set("running", JsonValue::Bool(profiler.running()));
  profiler_json.Set("hz", JsonValue::Number(profiler.hz()));
  profiler_json.Set("threads_registered",
                    JsonValue::Number(static_cast<double>(profiler.threads_registered())));
  profiler_json.Set("samples", JsonValue::Number(static_cast<double>(profiler.samples_recorded())));
  profiler_json.Set("dropped", JsonValue::Number(static_cast<double>(profiler.samples_dropped())));
  doc.Set("profiler", profiler_json);

  ProcessMemory memory = ReadProcessMemory();
  ProcessCpu cpu = ReadProcessCpu();
  JsonValue process = JsonValue::Object();
  process.Set("rss_bytes", JsonValue::Number(static_cast<double>(memory.rss_bytes)));
  process.Set("peak_rss_bytes", JsonValue::Number(static_cast<double>(memory.peak_rss_bytes)));
  process.Set("cpu_user_seconds", JsonValue::Number(cpu.user_seconds));
  process.Set("cpu_system_seconds", JsonValue::Number(cpu.system_seconds));
  doc.Set("process", process);
  return doc;
}

}  // namespace ppdp::obs
