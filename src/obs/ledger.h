#ifndef PPDP_OBS_LEDGER_H_
#define PPDP_OBS_LEDGER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/table.h"

namespace ppdp::obs {

/// Auditable privacy-budget ledger: every differential-privacy mechanism
/// invocation is recorded as a labeled ε spend and checked against a budget
/// *before* it happens, so budget exhaustion surfaces as a non-OK Status at
/// the offending call instead of silent over-spending.
///
/// Enforcement is pluggable: by default the ledger applies sequential
/// composition against its own budget; alternatively an external enforcer
/// (e.g. a dp::PrivacyAccountant's Spend) can be attached, making the
/// ledger the audit trail in front of an existing accountant:
///
///   dp::PrivacyAccountant accountant(1.0);
///   obs::PrivacyLedger ledger(1.0, [&](double e) { return accountant.Spend(e); });
///   PPDP_RETURN_IF_ERROR(ledger.Spend("cpt", "laplace", 0.1));
///
/// Thread-safe; entries aggregate by (label, mechanism).
class PrivacyLedger {
 public:
  /// Spends are enforced by sequential composition against `budget`
  /// (must be positive).
  explicit PrivacyLedger(double budget);

  /// Delegates the budget check to `enforcer` (called once per Spend with
  /// the total ε of that call); `budget` is kept for reporting.
  PrivacyLedger(double budget, std::function<Status(double)> enforcer);

  /// Records `invocations` applications of `mechanism` costing `epsilon`
  /// each, under `label`. Fails (recording nothing) when ε is not positive
  /// or the remaining budget cannot cover the spend; the failure itself is
  /// tallied and visible via rejected_spends().
  Status Spend(std::string_view label, std::string_view mechanism, double epsilon,
               uint64_t invocations = 1);

  /// Recovery-only: records a spend replayed from a durable log WITHOUT any
  /// budget check. A charge-ahead WAL record proves the ε may already have
  /// left the building, so it must be counted even if that pushes spent past
  /// the budget (remaining then goes ≤ 0 and every later Spend rejects) —
  /// the conservative direction. Never use this on a live request path.
  void RestoreSpend(std::string_view label, std::string_view mechanism, double epsilon,
                    uint64_t invocations = 1);

  double budget() const;
  double spent() const;
  /// Consistent remaining budget: budget and spent are read under one lock,
  /// so a concurrent Spend can never be observed half-applied (the old
  /// implementation computed budget() - spent() from two separate reads).
  double remaining() const;
  uint64_t rejected_spends() const;

  /// One-lock consistent view of the whole budget state — what run reports
  /// persist, so the audit trail can never show spent + remaining != budget.
  struct BudgetSnapshot {
    double budget = 0.0;
    double spent = 0.0;
    double remaining = 0.0;
    uint64_t rejected = 0;
  };
  BudgetSnapshot snapshot() const;

  /// Names this ledger for live telemetry: it appears under `name` in
  /// /statusz snapshots and exports a `ledger.<name>.remaining_epsilon`
  /// gauge updated on every Spend (the gauge reference is resolved once
  /// here, so the spend path pays a single atomic store). Unnamed ledgers
  /// still show up in SnapshotAll under an auto-assigned "ledger<N>" but
  /// register no gauge — short-lived ledgers in sweep loops would otherwise
  /// grow the metric registry without bound.
  void SetName(std::string name);
  std::string name() const;

  /// Live (name, budget snapshot) of every PrivacyLedger currently alive in
  /// the process, in creation order — the per-entity budget view /statusz
  /// serves mid-run.
  static std::vector<std::pair<std::string, BudgetSnapshot>> SnapshotAll();

  /// One aggregated line of the audit trail.
  struct Entry {
    std::string label;
    std::string mechanism;
    uint64_t calls = 0;
    double total_epsilon = 0.0;
  };
  /// Entries in first-spend order.
  std::vector<Entry> entries() const;

  /// Audit table: label, mechanism, calls, epsilon spent, share of budget —
  /// plus a TOTAL row.
  Table Summary() const;

  ~PrivacyLedger();
  PrivacyLedger(const PrivacyLedger&) = delete;
  PrivacyLedger& operator=(const PrivacyLedger&) = delete;

 private:
  double budget_;
  std::function<Status(double)> enforcer_;  ///< empty = internal composition
  mutable std::mutex mutex_;
  std::string name_;              ///< auto "ledger<N>" until SetName
  class Gauge* remaining_gauge_ = nullptr;  ///< set by SetName; guarded by mutex_
  double spent_ = 0.0;
  uint64_t rejected_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace ppdp::obs

#endif  // PPDP_OBS_LEDGER_H_
