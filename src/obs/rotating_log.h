#ifndef PPDP_OBS_ROTATING_LOG_H_
#define PPDP_OBS_ROTATING_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/status.h"

namespace ppdp::obs {

/// Size-rotated JSONL sink shared by the serve access log and the SLO alert
/// log: one complete JSON object per line, flushed per append so live
/// tooling (tail, ppdp_tracestat, ppdp_slostat) never reads a torn record.
/// At most one rotated generation is kept (`<path>.1`), bounding the disk
/// footprint at ~2x max_bytes. Appends are serialized under one mutex, so
/// concurrent writers crossing the rotation boundary still produce
/// exactly-once records split cleanly across `<path>` and `<path>.1`.
class RotatingJsonlLog {
 public:
  RotatingJsonlLog() = default;
  ~RotatingJsonlLog();
  RotatingJsonlLog(const RotatingJsonlLog&) = delete;
  RotatingJsonlLog& operator=(const RotatingJsonlLog&) = delete;

  /// Opens (appending) `path`; rotation to `<path>.1` triggers once the
  /// current file would exceed `max_bytes`.
  Status Open(const std::string& path, uint64_t max_bytes);
  bool enabled() const;

  /// Appends one line (the trailing newline is added here). `line` must be
  /// a complete single-line JSON document.
  Status Append(const std::string& line);

  void Close();

  /// Lines appended since Open (both generations; for tests/statusz).
  uint64_t lines_written() const;
  /// Rotations performed since Open.
  uint64_t rotations() const;

 private:
  mutable std::mutex mutex_;
  std::string path_;
  uint64_t max_bytes_ = 0;
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
  uint64_t lines_written_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace ppdp::obs

#endif  // PPDP_OBS_ROTATING_LOG_H_
