#include "obs/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <mutex>

#include "common/flags.h"
#include "common/json.h"
#include "obs/recorder.h"

namespace ppdp::obs {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarn)};

std::mutex& SinkMutex() {
  static std::mutex m;
  return m;
}

LogSink& SinkSlot() {
  static LogSink sink;  // empty = default stderr sink
  return sink;
}

void DefaultSink(const LogRecord& r) {
  std::ostringstream line;
  line << '[' << LogLevelName(r.level) << ' ' << std::fixed << r.elapsed_seconds << "s] "
       << r.file << ':' << r.line << ' ' << r.message << '\n';
  std::cerr << line.str();
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

/// Forces the start timestamp to be captured at static-init time rather
/// than on first log.
[[maybe_unused]] const auto g_process_start_anchor = ProcessStart();

}  // namespace

double MonotonicSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - ProcessStart()).count();
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "UNKNOWN";
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *level = LogLevel::kWarn;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else if (lower == "off" || lower == "none") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

std::string FormatLogRecordJson(const LogRecord& record) {
  char elapsed[32];
  std::snprintf(elapsed, sizeof(elapsed), "%.6f", record.elapsed_seconds);
  std::string out = "{\"level\":\"";
  out += LogLevelName(record.level);
  out += "\",\"elapsed_s\":";
  out += elapsed;
  out += ",\"file\":\"";
  out += JsonEscape(record.file);
  out += "\",\"line\":";
  out += std::to_string(record.line);
  out += ",\"message\":\"";
  out += JsonEscape(record.message);
  out += "\"}";
  return out;
}

void UseJsonLogSink() {
  SetLogSink([](const LogRecord& record) { std::cerr << FormatLogRecordJson(record) << '\n'; });
}

bool InitLoggingFromFlags(const Flags& flags) {
  if (flags.GetBool("log_json", false)) UseJsonLogSink();
  if (!flags.Has("log_level")) return true;
  LogLevel level;
  if (!ParseLogLevel(flags.GetString("log_level", ""), &level)) {
    PPDP_LOG(WARN) << "unrecognized --log_level value"
                   << Field("value", flags.GetString("log_level", ""));
    return false;
  }
  SetLogLevel(level);
  return true;
}

Field::Field(std::string_view key, double value) : key_(key) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  FormatValue(buffer);
}

Field::Field(std::string_view key, bool value) : key_(key) { value_ = value ? "true" : "false"; }

void Field::FormatValue(std::string raw) {
  bool needs_quotes = raw.empty() || raw.find(' ') != std::string::npos ||
                      raw.find('"') != std::string::npos;
  if (!needs_quotes) {
    value_ = std::move(raw);
    return;
  }
  value_ = "\"";
  for (char c : raw) {
    if (c == '"') value_ += '\\';
    value_ += c;
  }
  value_ += '"';
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(Basename(file)), line_(line) {}

LogMessage::~LogMessage() {
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.elapsed_seconds = MonotonicSeconds();
  record.message = stream_.str();
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    const LogSink& sink = SinkSlot();
    if (sink) {
      sink(record);
    } else {
      DefaultSink(record);
    }
  }
  // Outside the sink lock: the flight recorder keeps its own ring of recent
  // records for postmortem dumps.
  FlightRecorder::Global().RecordLog(record);
}

}  // namespace internal

}  // namespace ppdp::obs
