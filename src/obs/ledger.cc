#include "obs/ledger.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"

namespace ppdp::obs {

namespace {

/// Live-ledger registry backing PrivacyLedger::SnapshotAll — the process's
/// per-entity budget view. Creation order is preserved; destruction
/// unregisters, so the telemetry server can never dereference a dead
/// ledger.
struct LedgerRegistry {
  std::mutex mutex;
  std::vector<PrivacyLedger*> live;
  uint64_t created = 0;

  static LedgerRegistry& Global() {
    static LedgerRegistry* registry = new LedgerRegistry();  // intentionally leaked
    return *registry;
  }
};

}  // namespace

PrivacyLedger::PrivacyLedger(double budget) : budget_(budget) {
  PPDP_CHECK(budget > 0.0) << "privacy budget must be positive, got " << budget;
  LedgerRegistry& registry = LedgerRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mutex);
  name_ = "ledger" + std::to_string(registry.created++);
  registry.live.push_back(this);
}

PrivacyLedger::PrivacyLedger(double budget, std::function<Status(double)> enforcer)
    : PrivacyLedger(budget) {
  PPDP_CHECK(enforcer != nullptr) << "enforcer must be callable";
  enforcer_ = std::move(enforcer);
}

PrivacyLedger::~PrivacyLedger() {
  LedgerRegistry& registry = LedgerRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = std::find(registry.live.begin(), registry.live.end(), this);
  if (it != registry.live.end()) registry.live.erase(it);
}

void PrivacyLedger::SetName(std::string name) {
  Gauge& gauge =
      MetricsRegistry::Global().gauge("ledger." + name + ".remaining_epsilon");
  std::lock_guard<std::mutex> lock(mutex_);
  name_ = std::move(name);
  remaining_gauge_ = &gauge;
  remaining_gauge_->Set(budget_ - spent_);
}

std::string PrivacyLedger::name() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return name_;
}

std::vector<std::pair<std::string, PrivacyLedger::BudgetSnapshot>> PrivacyLedger::SnapshotAll() {
  LedgerRegistry& registry = LedgerRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::pair<std::string, BudgetSnapshot>> snapshots;
  snapshots.reserve(registry.live.size());
  for (const PrivacyLedger* ledger : registry.live) {
    snapshots.emplace_back(ledger->name(), ledger->snapshot());
  }
  return snapshots;
}

Status PrivacyLedger::Spend(std::string_view label, std::string_view mechanism, double epsilon,
                            uint64_t invocations) {
  static Counter& spends = MetricsRegistry::Global().counter("obs.ledger.spends");
  static Counter& rejections = MetricsRegistry::Global().counter("obs.ledger.rejected");
  if (invocations == 0) return Status::InvalidArgument("invocations must be positive");
  double total = epsilon * static_cast<double>(invocations);
  std::lock_guard<std::mutex> lock(mutex_);
  Status verdict;
  if (epsilon <= 0.0) {
    verdict = Status::InvalidArgument("epsilon must be positive");
  } else if (enforcer_) {
    verdict = enforcer_(total);
  } else if (spent_ + total > budget_ + 1e-12) {
    verdict = Status::FailedPrecondition(
        "privacy budget exhausted: spending " + Table::FormatDouble(total, 6) + " for \"" +
        std::string(label) + "\" would exceed remaining " +
        Table::FormatDouble(budget_ - spent_, 6));
  }
  if (!verdict.ok()) {
    ++rejected_;
    rejections.Increment();
    FlightEvent event;
    event.category = "ledger";
    event.severity = "ERROR";
    event.label = std::string(label);
    event.message = "rejected spend of " + Table::FormatDouble(total, 6) + " via " +
                    std::string(mechanism) + ": " + verdict.ToString();
    FlightRecorder::Global().Record(std::move(event));
    PPDP_LOG(WARN) << "privacy ledger rejected spend" << Field("label", std::string(label))
                   << Field("mechanism", std::string(mechanism)) << Field("epsilon", total)
                   << Field("remaining", budget_ - spent_);
    return verdict;
  }
  spent_ += total;
  if (remaining_gauge_ != nullptr) remaining_gauge_->Set(budget_ - spent_);
  spends.Increment(invocations);
  for (Entry& entry : entries_) {
    if (entry.label == label && entry.mechanism == mechanism) {
      entry.calls += invocations;
      entry.total_epsilon += total;
      return Status::Ok();
    }
  }
  entries_.push_back(Entry{std::string(label), std::string(mechanism), invocations, total});
  return Status::Ok();
}

void PrivacyLedger::RestoreSpend(std::string_view label, std::string_view mechanism,
                                 double epsilon, uint64_t invocations) {
  static Counter& restored = MetricsRegistry::Global().counter("obs.ledger.restored");
  if (invocations == 0 || epsilon <= 0.0) return;  // nothing real to restore
  const double total = epsilon * static_cast<double>(invocations);
  std::lock_guard<std::mutex> lock(mutex_);
  spent_ += total;
  if (remaining_gauge_ != nullptr) remaining_gauge_->Set(budget_ - spent_);
  restored.Increment(invocations);
  for (Entry& entry : entries_) {
    if (entry.label == label && entry.mechanism == mechanism) {
      entry.calls += invocations;
      entry.total_epsilon += total;
      return;
    }
  }
  entries_.push_back(Entry{std::string(label), std::string(mechanism), invocations, total});
}

double PrivacyLedger::budget() const { return budget_; }

double PrivacyLedger::spent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spent_;
}

double PrivacyLedger::remaining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return budget_ - spent_;
}

PrivacyLedger::BudgetSnapshot PrivacyLedger::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  BudgetSnapshot snap;
  snap.budget = budget_;
  snap.spent = spent_;
  snap.remaining = budget_ - spent_;
  snap.rejected = rejected_;
  return snap;
}

uint64_t PrivacyLedger::rejected_spends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::vector<PrivacyLedger::Entry> PrivacyLedger::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_;
}

Table PrivacyLedger::Summary() const {
  Table table({"label", "mechanism", "calls", "epsilon spent", "share of budget"});
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& entry : entries_) {
    table.AddRow({entry.label, entry.mechanism, std::to_string(entry.calls),
                  Table::FormatDouble(entry.total_epsilon, 6),
                  Table::FormatDouble(entry.total_epsilon / budget_, 4)});
  }
  table.AddRow({"TOTAL", "", "", Table::FormatDouble(spent_, 6),
                Table::FormatDouble(spent_ / budget_, 4)});
  return table;
}

}  // namespace ppdp::obs
