#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <ctime>
#include <fstream>
#include <map>

#include "obs/log.h"

namespace ppdp::obs {

namespace {

uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Registry of open-span stacks keyed by thread ordinal. Spans push/pop
/// their own thread's stack (strict LIFO by RAII), readers snapshot the
/// whole map; both sides take one short-lived mutex, which is cheap at span
/// granularity (spans mark phases, not per-item work).
struct ActiveSpanRegistry {
  std::mutex mutex;
  std::map<uint32_t, std::vector<std::string>> stacks;

  static ActiveSpanRegistry& Global() {
    static ActiveSpanRegistry* registry = new ActiveSpanRegistry();  // intentionally leaked
    return *registry;
  }

  void Push(uint32_t thread, const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    stacks[thread].push_back(name);
  }

  void Pop(uint32_t thread) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = stacks.find(thread);
    if (it == stacks.end() || it->second.empty()) return;
    it->second.pop_back();
    if (it->second.empty()) stacks.erase(it);
  }
};

}  // namespace

std::vector<ActiveSpanStack> ActiveSpanStacks() {
  ActiveSpanRegistry& registry = ActiveSpanRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<ActiveSpanStack> stacks;
  stacks.reserve(registry.stacks.size());
  for (const auto& [thread, spans] : registry.stacks) {
    stacks.push_back(ActiveSpanStack{thread, spans});
  }
  return stacks;
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // intentionally leaked
  return *recorder;
}

void TraceRecorder::SetEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool TraceRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t TraceRecorder::num_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceRecorder::PhaseStats> TraceRecorder::PhaseStatsSorted() const {
  struct Agg {
    size_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    double cpu_us = 0.0;
  };
  std::map<std::string, Agg> phases;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TraceEvent& e : events_) {
      Agg& agg = phases[e.name];
      if (agg.count == 0 || e.duration_us < agg.min_us) agg.min_us = e.duration_us;
      if (agg.count == 0 || e.duration_us > agg.max_us) agg.max_us = e.duration_us;
      agg.total_us += e.duration_us;
      agg.cpu_us += e.cpu_us;
      ++agg.count;
    }
  }
  std::vector<PhaseStats> stats;
  stats.reserve(phases.size());
  for (const auto& [name, agg] : phases) {
    PhaseStats row;
    row.name = name;
    row.count = agg.count;
    row.wall_ms_total = agg.total_us / 1e3;
    row.wall_ms_mean = agg.total_us / static_cast<double>(agg.count) / 1e3;
    row.wall_ms_min = agg.min_us / 1e3;
    row.wall_ms_max = agg.max_us / 1e3;
    row.cpu_ms_total = agg.cpu_us / 1e3;
    stats.push_back(std::move(row));
  }
  std::sort(stats.begin(), stats.end(), [](const PhaseStats& a, const PhaseStats& b) {
    return a.wall_ms_total != b.wall_ms_total ? a.wall_ms_total > b.wall_ms_total
                                              : a.name < b.name;
  });
  return stats;
}

Table TraceRecorder::PhaseSummary() const {
  Table table({"phase", "count", "total ms", "mean ms", "min ms", "max ms", "cpu ms"});
  for (const PhaseStats& s : PhaseStatsSorted()) {
    table.AddRow({s.name, std::to_string(s.count), Table::FormatDouble(s.wall_ms_total, 3),
                  Table::FormatDouble(s.wall_ms_mean, 3), Table::FormatDouble(s.wall_ms_min, 3),
                  Table::FormatDouble(s.wall_ms_max, 3),
                  Table::FormatDouble(s.cpu_ms_total, 3)});
  }
  return table;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  std::vector<TraceEvent> snapshot = events();
  file << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    if (i) file << ",";
    file << "\n{\"name\":\"";
    for (char c : e.name) {
      if (c == '"' || c == '\\') file << '\\';
      file << c;
    }
    file << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread << ",\"ts\":"
         << Table::FormatDouble(e.start_us, 3) << ",\"dur\":"
         << Table::FormatDouble(e.duration_us, 3) << "}";
  }
  file << "\n]}\n";
  if (!file.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

TraceSpan::TraceSpan(std::string name)
    : name_(std::move(name)),
      start_us_(MonotonicSeconds() * 1e6),
      start_cpu_us_(ThreadCpuSeconds() * 1e6) {
  ActiveSpanRegistry::Global().Push(ThisThreadOrdinal(), name_);
}

double TraceSpan::ElapsedSeconds() const { return MonotonicSeconds() - start_us_ / 1e6; }

TraceSpan::~TraceSpan() {
  ActiveSpanRegistry::Global().Pop(ThisThreadOrdinal());
  TraceEvent event;
  event.name = std::move(name_);
  event.thread = ThisThreadOrdinal();
  event.start_us = start_us_;
  event.duration_us = MonotonicSeconds() * 1e6 - start_us_;
  event.cpu_us = ThreadCpuSeconds() * 1e6 - start_cpu_us_;
  TraceRecorder::Global().Record(std::move(event));
}

}  // namespace ppdp::obs
