#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <ctime>
#include <fstream>
#include <map>
#include <unordered_map>

#include "obs/log.h"
#include "obs/profiler.h"

namespace ppdp::obs {

namespace {

uint32_t ThisThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Global intern table: span name -> small id, plus the reverse array the
/// profiler symbolizes samples with offline. Both sides are leaked so a
/// late signal (or a reader during shutdown) can never see freed memory.
struct SpanNameTable {
  std::mutex mutex;
  std::unordered_map<std::string, uint32_t> ids;
  std::vector<const std::string*> names;  ///< index id-1 -> leaked name

  static SpanNameTable& Global() {
    static SpanNameTable* table = new SpanNameTable();  // intentionally leaked
    return *table;
  }
};

/// Fixed-depth per-thread stack of interned span ids. The owning thread
/// pushes/pops; its own SIGPROF handler reads the top. Atomics are ordered
/// so the handler never reads a slot before the id was stored. Trivially
/// destructible (plain atomics) so no TLS destructor can race a late
/// signal.
constexpr uint32_t kMaxSignalSpanDepth = 64;
struct TlsSpanStack {
  std::atomic<uint32_t> depth{0};
  std::atomic<uint32_t> ids[kMaxSignalSpanDepth] = {};
};
thread_local TlsSpanStack t_span_stack;

/// Registry of open-span stacks keyed by thread ordinal. Spans push/pop
/// their own thread's stack (strict LIFO by RAII), readers snapshot the
/// whole map; both sides take one short-lived mutex, which is cheap at span
/// granularity (spans mark phases, not per-item work).
struct ActiveSpanRegistry {
  std::mutex mutex;
  std::map<uint32_t, std::vector<std::string>> stacks;

  static ActiveSpanRegistry& Global() {
    static ActiveSpanRegistry* registry = new ActiveSpanRegistry();  // intentionally leaked
    return *registry;
  }

  void Push(uint32_t thread, const std::string& name) {
    std::lock_guard<std::mutex> lock(mutex);
    stacks[thread].push_back(name);
  }

  void Pop(uint32_t thread) {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = stacks.find(thread);
    if (it == stacks.end() || it->second.empty()) return;
    it->second.pop_back();
    if (it->second.empty()) stacks.erase(it);
  }
};

}  // namespace

uint32_t InternSpanName(const std::string& name) {
  SpanNameTable& table = SpanNameTable::Global();
  std::lock_guard<std::mutex> lock(table.mutex);
  auto it = table.ids.find(name);
  if (it != table.ids.end()) return it->second;
  table.names.push_back(new std::string(name));  // intentionally leaked
  uint32_t id = static_cast<uint32_t>(table.names.size());
  table.ids.emplace(name, id);
  return id;
}

const std::string& SpanNameForId(uint32_t id) {
  static const std::string* kNone = new std::string("(none)");
  SpanNameTable& table = SpanNameTable::Global();
  std::lock_guard<std::mutex> lock(table.mutex);
  if (id == 0 || id > table.names.size()) return *kNone;
  return *table.names[id - 1];
}

uint32_t CurrentThreadSpanId() {
  uint32_t depth = t_span_stack.depth.load(std::memory_order_acquire);
  if (depth == 0) return 0;
  if (depth > kMaxSignalSpanDepth) depth = kMaxSignalSpanDepth;
  return t_span_stack.ids[depth - 1].load(std::memory_order_relaxed);
}

void TouchSpanTls() { t_span_stack.depth.load(std::memory_order_relaxed); }

std::vector<ActiveSpanStack> ActiveSpanStacks() {
  ActiveSpanRegistry& registry = ActiveSpanRegistry::Global();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<ActiveSpanStack> stacks;
  stacks.reserve(registry.stacks.size());
  for (const auto& [thread, spans] : registry.stacks) {
    stacks.push_back(ActiveSpanStack{thread, spans});
  }
  return stacks;
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // intentionally leaked
  return *recorder;
}

void TraceRecorder::SetEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool TraceRecorder::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void TraceRecorder::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

size_t TraceRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

size_t TraceRecorder::num_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceRecorder::PhaseStats> TraceRecorder::PhaseStatsSorted() const {
  struct Agg {
    size_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    double cpu_us = 0.0;
    uint64_t alloc_bytes = 0;
    uint64_t rss_peak = 0;
  };
  std::map<std::string, Agg> phases;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const TraceEvent& e : events_) {
      Agg& agg = phases[e.name];
      if (agg.count == 0 || e.duration_us < agg.min_us) agg.min_us = e.duration_us;
      if (agg.count == 0 || e.duration_us > agg.max_us) agg.max_us = e.duration_us;
      agg.total_us += e.duration_us;
      agg.cpu_us += e.cpu_us;
      agg.alloc_bytes += e.alloc_bytes;
      if (e.rss_bytes > agg.rss_peak) agg.rss_peak = e.rss_bytes;
      ++agg.count;
    }
  }
  std::vector<PhaseStats> stats;
  stats.reserve(phases.size());
  for (const auto& [name, agg] : phases) {
    PhaseStats row;
    row.name = name;
    row.count = agg.count;
    row.wall_ms_total = agg.total_us / 1e3;
    row.wall_ms_mean = agg.total_us / static_cast<double>(agg.count) / 1e3;
    row.wall_ms_min = agg.min_us / 1e3;
    row.wall_ms_max = agg.max_us / 1e3;
    row.cpu_ms_total = agg.cpu_us / 1e3;
    row.alloc_bytes_total = agg.alloc_bytes;
    row.rss_peak_bytes = agg.rss_peak;
    stats.push_back(std::move(row));
  }
  std::sort(stats.begin(), stats.end(), [](const PhaseStats& a, const PhaseStats& b) {
    return a.wall_ms_total != b.wall_ms_total ? a.wall_ms_total > b.wall_ms_total
                                              : a.name < b.name;
  });
  return stats;
}

Table TraceRecorder::PhaseSummary() const {
  Table table({"phase", "count", "total ms", "mean ms", "min ms", "max ms", "cpu ms",
               "alloc MB", "peak rss MB"});
  for (const PhaseStats& s : PhaseStatsSorted()) {
    table.AddRow({s.name, std::to_string(s.count), Table::FormatDouble(s.wall_ms_total, 3),
                  Table::FormatDouble(s.wall_ms_mean, 3), Table::FormatDouble(s.wall_ms_min, 3),
                  Table::FormatDouble(s.wall_ms_max, 3),
                  Table::FormatDouble(s.cpu_ms_total, 3),
                  Table::FormatDouble(static_cast<double>(s.alloc_bytes_total) / (1 << 20), 2),
                  Table::FormatDouble(static_cast<double>(s.rss_peak_bytes) / (1 << 20), 1)});
  }
  return table;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::NotFound("cannot open " + path + " for writing");
  std::vector<TraceEvent> snapshot = events();
  file << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const TraceEvent& e = snapshot[i];
    if (i) file << ",";
    file << "\n{\"name\":\"";
    for (char c : e.name) {
      if (c == '"' || c == '\\') file << '\\';
      file << c;
    }
    file << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.thread << ",\"ts\":"
         << Table::FormatDouble(e.start_us, 3) << ",\"dur\":"
         << Table::FormatDouble(e.duration_us, 3) << "}";
  }
  file << "\n]}\n";
  if (!file.good()) return Status::Internal("write to " + path + " failed");
  return Status::Ok();
}

TraceSpan::TraceSpan(std::string name)
    : name_(std::move(name)),
      start_us_(MonotonicSeconds() * 1e6),
      start_cpu_us_(ThreadCpuSeconds() * 1e6),
      start_alloc_bytes_(ThreadAllocBytes()) {
  // Publish the interned id for the profiler's signal handler: the id is
  // stored before the depth that makes it visible.
  uint32_t id = InternSpanName(name_);
  uint32_t depth = t_span_stack.depth.load(std::memory_order_relaxed);
  if (depth < kMaxSignalSpanDepth) {
    t_span_stack.ids[depth].store(id, std::memory_order_relaxed);
  }
  t_span_stack.depth.store(depth + 1, std::memory_order_release);
  ActiveSpanRegistry::Global().Push(ThisThreadOrdinal(), name_);
}

double TraceSpan::ElapsedSeconds() const { return MonotonicSeconds() - start_us_ / 1e6; }

TraceSpan::~TraceSpan() {
  uint32_t depth = t_span_stack.depth.load(std::memory_order_relaxed);
  if (depth > 0) t_span_stack.depth.store(depth - 1, std::memory_order_release);
  ActiveSpanRegistry::Global().Pop(ThisThreadOrdinal());
  TraceEvent event;
  event.name = std::move(name_);
  event.thread = ThisThreadOrdinal();
  event.start_us = start_us_;
  event.duration_us = MonotonicSeconds() * 1e6 - start_us_;
  event.cpu_us = ThreadCpuSeconds() * 1e6 - start_cpu_us_;
  event.alloc_bytes = ThreadAllocBytes() - start_alloc_bytes_;
  event.rss_bytes = CurrentRssBytesCached();
  TraceRecorder::Global().Record(std::move(event));
}

}  // namespace ppdp::obs
