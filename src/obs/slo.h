#ifndef PPDP_OBS_SLO_H_
#define PPDP_OBS_SLO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/rotating_log.h"

namespace ppdp::obs {

/// ---- Sliding-window aggregation + SRE-style multi-burn-rate alerting ----
///
/// Everything the cumulative MetricsRegistry cannot answer — "is the p99
/// *currently* out of bounds", "how fast is tenant X burning its ε budget
/// *right now*" — runs through these windowed primitives. All evaluation is
/// driven by an injectable clock, so alert timelines replay byte-identically
/// in tests regardless of wall time or thread count.

/// Injectable time source (seconds on a monotonic timeline). The default is
/// obs::MonotonicSeconds; tests substitute a scripted clock.
using SloClock = std::function<double()>;

/// Ring of time-aligned buckets over a scalar stream. Bucket b covers
/// [b*bucket_seconds, (b+1)*bucket_seconds); a windowed query merges the
/// last ceil(window/bucket) buckets, so answers lag true sliding-window
/// semantics by at most one bucket — the standard multi-bucket
/// approximation. With `bounds` set, each bucket additionally histograms
/// its observations so windowed quantiles are available (bucket
/// interpolation, same scheme as obs::Histogram beyond its exact cap).
/// Thread-safe; stale buckets are lazily recycled on the next touch.
class SlidingWindow {
 public:
  struct Options {
    double bucket_seconds = 1.0;
    /// Ring span = bucket_seconds * num_buckets; windows longer than the
    /// span are clamped to it.
    size_t num_buckets = 660;
    /// Strictly increasing histogram bounds; empty = counter-only window.
    std::vector<double> bounds;
  };

  explicit SlidingWindow(Options options);

  /// Records `value` into the bucket covering `now`.
  void Add(double value, double now);

  struct WindowStats {
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;  ///< 0 when empty
  };
  WindowStats StatsOver(double window_seconds, double now) const;

  /// sum over the window / window seconds (events-per-second when Add is
  /// called with value 1, ε-per-second when called with ε, ...).
  double RateOver(double window_seconds, double now) const;

  /// Bucket-interpolated quantile over the window; 0 when the window is
  /// empty or the window was built without bounds.
  double QuantileOver(double window_seconds, double q, double now) const;

  double bucket_seconds() const { return options_.bucket_seconds; }
  double span_seconds() const {
    return options_.bucket_seconds * static_cast<double>(options_.num_buckets);
  }

 private:
  struct Bucket {
    int64_t index = -1;  ///< absolute bucket index; -1 = never used
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> bound_counts;  ///< bounds.size()+1 when bounds set
  };

  Bucket& BucketFor(double now);  // requires mutex_ held
  /// First absolute bucket index inside [now - window, now].
  int64_t FirstIndex(double window_seconds, double now) const;

  Options options_;
  mutable std::mutex mutex_;
  std::vector<Bucket> ring_;
};

/// One SRE-style multi-window multi-burn-rate alert rule (the `ppdp.slo.v1`
/// config schema maps onto this 1:1). A rule breaches only when its signal
/// is out of bounds over BOTH the fast and the slow window — the fast
/// window gives detection latency, the slow window keeps one spike from
/// paging — and must hold the breach for `for_seconds` before `pending`
/// escalates to `firing`.
struct AlertRule {
  enum class Signal {
    kAvailability,  ///< non-5xx ratio vs objective, burn-rate framed
    kLatency,       ///< windowed quantile vs threshold_seconds
    kQueue,         ///< windowed mean admission-queue depth ratio vs threshold
    kLedgerBurn,    ///< per-tenant projected ε time-to-exhaustion vs horizon
  };
  enum class Severity {
    kTicket,  ///< firing degrades /healthz
    kPage,    ///< firing fails /healthz
  };

  std::string name;  ///< [A-Za-z0-9_.-], <= 64 chars; unique per config
  Signal signal = Signal::kAvailability;
  Severity severity = Severity::kTicket;

  double fast_window_seconds = 60.0;
  double slow_window_seconds = 600.0;
  double for_seconds = 0.0;      ///< breach hold before pending -> firing
  double resolve_seconds = 60.0; ///< clear hold before firing -> resolved
  uint64_t min_count = 1;        ///< fast-window events required to evaluate

  // Signal-specific parameters (unused ones keep their defaults):
  double objective = 0.999;        ///< availability: good-ratio target
  double burn_rate = 14.4;         ///< availability: error-budget burn multiple
  double quantile = 0.99;          ///< latency: which quantile is bounded
  double threshold = 0.0;          ///< latency: seconds; queue: depth ratio
  double horizon_seconds = 600.0;  ///< ledger burn: minimum acceptable TTE
};

const char* SignalName(AlertRule::Signal signal);
const char* SeverityName(AlertRule::Severity severity);

/// The four built-in rules every serve daemon gets without a --slo_config:
/// availability (99.9% non-5xx, 14.4x burn), request latency (p99 <= 2.5s),
/// admission-queue pressure (mean depth ratio <= 0.9), and per-tenant
/// ledger burn (projected exhaustion within 600s fires a page *before* the
/// first 403).
std::vector<AlertRule> DefaultSloRules();

/// Parses + validates a `ppdp.slo.v1` document. Rejects unknown signals /
/// severities, non-positive or inverted windows, out-of-range objectives,
/// duplicate or grammar-violating rule names.
Result<std::vector<AlertRule>> ParseSloConfig(const JsonValue& doc);
/// Loads + parses a config file.
Result<std::vector<AlertRule>> LoadSloConfig(const std::string& path);

/// Alert lifecycle. `pending -> firing -> resolved` are the logged
/// transitions; a pending alert whose breach clears before `for_seconds`
/// falls back to inactive silently (no operator ever saw it).
enum class AlertState { kInactive, kPending, kFiring, kResolved };
const char* AlertStateName(AlertState state);

/// One logged state transition — the `ppdp.alertlog.v1` record.
struct AlertTransition {
  double t_seconds = 0.0;
  std::string rule;
  std::string tenant;  ///< empty for global (non-ledger) rules
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
  AlertRule::Severity severity = AlertRule::Severity::kTicket;
  double burn_fast = 0.0;  ///< signal burn in the fast window at transition
  double burn_slow = 0.0;

  JsonValue ToJson() const;
};

/// Offline/windowed attainment of one rule — what /sloz serves, what the
/// bench stanza records.
struct SloAttainment {
  std::string rule;
  std::string signal;
  std::string tenant;      ///< worst tenant for ledger rules, else empty
  double objective = 0.0;  ///< target in the rule's native unit
  double attained = 0.0;   ///< achieved value in the same unit
  bool met = false;
  uint64_t events = 0;  ///< observations in the slow window
};

/// The SLO engine: sliding windows fed from the request path, evaluated
/// into per-rule alert state machines. Exports every transition three ways
/// (alert-state gauges + transition counter in the MetricsRegistry, a
/// FlightRecorder event, and an optional rotating `ppdp.alertlog.v1` JSONL
/// log), and serves the /alertz, /sloz and tri-state /healthz documents.
///
/// Ingestion (RecordRequest/RecordQueueDepth/RecordSpend) takes only the
/// touched window's lock. Evaluation is explicit: call Evaluate() (or the
/// throttled EvaluateIfDue() on hot paths) — nothing fires between calls,
/// which is what makes scripted-clock tests exactly reproducible.
class SloEngine {
 public:
  struct Options {
    std::vector<AlertRule> rules;  ///< empty = DefaultSloRules()
    SloClock clock;                ///< null = obs::MonotonicSeconds
    double bucket_seconds = 1.0;
    /// EvaluateIfDue throttle; 0 evaluates on every call.
    double eval_period_seconds = 1.0;
    /// Cap on distinct tenants tracked for ledger-burn rules (names beyond
    /// it are ignored — the serve layer's TenantRegistry bounds real
    /// tenants anyway).
    size_t max_tenants = 64;
    /// JSONL alert log path (empty = off) + rotation threshold.
    std::string alert_log;
    double alert_log_max_mb = 16.0;
    /// Mint slo.* gauges/counters in the global MetricsRegistry on every
    /// transition. Tests that golden-check /metrics turn this off.
    bool export_metrics = true;
  };

  static Result<std::unique_ptr<SloEngine>> Create(Options options);
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// One finished request: HTTP status + total latency.
  void RecordRequest(int status, double latency_seconds);
  /// Admission-queue depth as a ratio of its bound (sampled per admit).
  void RecordQueueDepth(double depth_ratio);
  /// One successful ε spend with the ledger's post-spend remaining/budget.
  void RecordSpend(const std::string& tenant, double epsilon, double remaining_epsilon,
                   double budget_epsilon);

  /// Evaluates every rule at clock() and returns the transitions that
  /// occurred (already exported). Deterministic given the record/evaluate
  /// timeline.
  std::vector<AlertTransition> Evaluate();
  /// Evaluate() at most once per eval_period_seconds; cheap no-op between.
  void EvaluateIfDue();

  /// Worst severity among currently-firing alerts: 0 = none, 1 = ticket
  /// (degraded), 2 = page (failing). Uses the states of the last Evaluate.
  int WorstFiringSeverity() const;
  /// Names of currently-firing alert instances ("rule" or "rule/tenant").
  std::vector<std::string> FiringAlerts() const;

  /// `ppdp.alertz.v1`: every rule instance's state, burn rates, and the
  /// windowed inputs the verdict was computed from.
  JsonValue AlertzDocument() const;
  /// `ppdp.sloz.v1`: slow-window attainment per rule.
  JsonValue SlozDocument() const;
  /// The /sloz rows as structs (bench stanza, tests).
  std::vector<SloAttainment> Attainment() const;

  uint64_t transitions_total() const;
  const std::vector<AlertRule>& rules() const { return options_.rules; }
  /// Non-null when an alert log is configured (statusz, tests).
  const RotatingJsonlLog* alert_log() const {
    return alert_log_.enabled() ? &alert_log_ : nullptr;
  }

 private:
  explicit SloEngine(Options options);

  /// Per-(rule, tenant) windowed verdict.
  struct SignalReading {
    bool evaluable = false;  ///< enough data to judge
    bool breach = false;
    double burn = 0.0;      ///< signal-specific burn/severity measure
    JsonValue inputs;       ///< windowed numbers for /alertz
  };
  SignalReading ReadSignal(const AlertRule& rule, const std::string& tenant,
                           double window_seconds, double now) const;

  /// One alert instance's state machine.
  struct Instance {
    AlertState state = AlertState::kInactive;
    double since_seconds = 0.0;    ///< entered current state
    double pending_since = 0.0;    ///< breach start (state == pending)
    double clear_since = -1.0;     ///< breach clear start (state == firing)
    double burn_fast = 0.0;
    double burn_slow = 0.0;
    JsonValue inputs_fast;
    JsonValue inputs_slow;
  };

  /// Advances one instance; appends transitions. Requires mutex_ held.
  void Step(const AlertRule& rule, const std::string& tenant, Instance* instance, double now,
            std::vector<AlertTransition>* transitions);
  /// Exports one transition (metrics, flight ring, alert log). Requires
  /// mutex_ held (the log/flight sinks take only their own locks).
  void Export(const AlertTransition& transition);

  struct TenantBurn {
    std::unique_ptr<SlidingWindow> spend;  ///< ε per bucket
    double remaining = 0.0;
    double budget = 0.0;
  };

  Options options_;
  SloClock clock_;

  // Ingestion windows (each is internally locked).
  SlidingWindow requests_;       ///< all finished requests, value = 1
  SlidingWindow server_errors_;  ///< 5xx requests, value = 1
  SlidingWindow latency_;        ///< request seconds (with bounds)
  SlidingWindow queue_depth_;    ///< admission depth ratio samples

  mutable std::mutex mutex_;  ///< instances + tenants + eval bookkeeping
  std::map<std::string, TenantBurn> tenants_;
  /// Keyed "rule" for global rules, "rule\ntenant" for ledger instances.
  std::map<std::string, Instance> instances_;
  double last_eval_seconds_ = -1.0;
  uint64_t transitions_total_ = 0;
  RotatingJsonlLog alert_log_;
};

/// Validates one `ppdp.alertlog.v1` record (shared by ppdp_slostat and
/// tests): schema tag, known states/severities, a legal transition pair,
/// non-negative timestamp and burn rates.
Status ValidateAlertLogRecord(const JsonValue& doc);

}  // namespace ppdp::obs

#endif  // PPDP_OBS_SLO_H_
