#include "obs/wal.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "fault/fault.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ppdp::obs {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'D', 'P', 'W', 'A', 'L', '1'};
constexpr uint8_t kRecordSpend = 1;
constexpr uint8_t kRecordAbort = 2;
/// Records are a few hundred bytes at most (tenant/label/mechanism are
/// length-capped upstream); anything claiming more is corruption, not data.
constexpr uint32_t kMaxPayloadBytes = 4096;

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, 4);
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out->append(bytes, 8);
}

void PutDouble(std::string* out, double v) {
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  out->append(bytes, 8);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked little-endian reader over a payload buffer.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }
  bool ReadDouble(double* v) { return ReadRaw(v, 8); }
  bool ReadString(std::string* v) {
    uint32_t len = 0;
    if (!ReadU32(&len) || len > size_ - pos_) return false;
    v->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool exhausted() const { return pos_ == size_; }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Counter& AppendCounter() {
  static Counter& c = MetricsRegistry::Global().counter("ledger.wal.appends");
  return c;
}
Counter& SyncCounter() {
  static Counter& c = MetricsRegistry::Global().counter("ledger.wal.fsyncs");
  return c;
}
Counter& AppendFailureCounter() {
  static Counter& c = MetricsRegistry::Global().counter("ledger.wal.append_failures");
  return c;
}

}  // namespace

Result<LedgerWal::SyncPolicy> ParseSyncPolicy(const std::string& name) {
  if (name == "always") return LedgerWal::SyncPolicy::kAlways;
  if (name == "batch") return LedgerWal::SyncPolicy::kBatch;
  return Status::InvalidArgument("unknown ledger sync policy: " + name +
                                 " (expected always | batch)");
}

Result<WalRecovery> LedgerWal::Scan(const std::string& path) {
  WalRecovery recovery;
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return recovery;  // no WAL yet: empty recovery
    return Status::Unavailable("wal open('" + path + "'): " + std::strerror(errno));
  }
  std::string contents;
  char buffer[4096];
  ssize_t n;
  while ((n = ::read(fd, buffer, sizeof(buffer))) > 0) {
    contents.append(buffer, static_cast<size_t>(n));
  }
  const bool read_failed = n < 0;
  ::close(fd);
  if (read_failed) {
    return Status::Unavailable("wal read('" + path + "'): " + std::strerror(errno));
  }
  if (contents.empty()) return recovery;  // created-but-unwritten file
  if (contents.size() < sizeof(kMagic) ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::DataLoss("'" + path + "' is not a ppdp ledger WAL (bad magic)");
  }

  // Spends indexed by sequence so aborts can cancel them; the surviving set
  // is emitted in original append order.
  std::vector<WalSpend> spends;
  size_t pos = sizeof(kMagic);
  recovery.valid_bytes = pos;
  while (pos < contents.size()) {
    if (contents.size() - pos < 12) break;  // torn frame header
    uint32_t payload_len = 0;
    uint64_t checksum = 0;
    std::memcpy(&payload_len, contents.data() + pos, 4);
    std::memcpy(&checksum, contents.data() + pos + 4, 8);
    if (payload_len == 0 || payload_len > kMaxPayloadBytes) break;       // corrupt length
    if (contents.size() - pos - 12 < payload_len) break;                 // torn payload
    const char* payload = contents.data() + pos + 12;
    if (Fnv1a64(payload, payload_len) != checksum) break;                // corrupt payload

    PayloadReader reader(payload, payload_len);
    uint8_t type = 0;
    uint64_t seq = 0;
    if (!reader.ReadU8(&type) || !reader.ReadU64(&seq)) break;
    if (type == kRecordSpend) {
      WalSpend spend;
      spend.seq = seq;
      if (!reader.ReadString(&spend.tenant) || !reader.ReadString(&spend.label) ||
          !reader.ReadString(&spend.mechanism) || !reader.ReadDouble(&spend.epsilon) ||
          !reader.ReadU64(&spend.invocations) || !reader.exhausted()) {
        break;
      }
      spends.push_back(std::move(spend));
    } else if (type == kRecordAbort) {
      if (!reader.exhausted()) break;
      for (auto it = spends.rbegin(); it != spends.rend(); ++it) {
        if (it->seq == seq) {
          spends.erase(std::next(it).base());
          ++recovery.aborts_applied;
          break;
        }
      }
    } else {
      break;  // unknown record type: treat as corruption
    }
    ++recovery.records_read;
    pos += 12 + payload_len;
    recovery.valid_bytes = pos;
  }
  recovery.truncated_bytes = contents.size() - recovery.valid_bytes;
  recovery.tail_truncated = recovery.truncated_bytes > 0;
  recovery.spends = std::move(spends);
  return recovery;
}

Result<std::unique_ptr<LedgerWal>> LedgerWal::Open(const Options& options) {
  if (options.path.empty()) return Status::InvalidArgument("wal path must not be empty");
  PPDP_ASSIGN_OR_RETURN(WalRecovery recovery, Scan(options.path));
  if (recovery.tail_truncated) {
    if (::truncate(options.path.c_str(), static_cast<off_t>(recovery.valid_bytes)) != 0) {
      return Status::Unavailable("wal truncate('" + options.path +
                                 "'): " + std::strerror(errno));
    }
    PPDP_LOG(WARN) << "ledger wal recovered with a torn/corrupt tail"
                   << Field("path", options.path)
                   << Field("truncated_bytes", recovery.truncated_bytes)
                   << Field("records", recovery.records_read);
  }

  int fd = ::open(options.path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Unavailable("wal open('" + options.path + "'): " + std::strerror(errno));
  }
  if (recovery.valid_bytes == 0) {
    // Fresh (or empty) file: stamp the magic before any record.
    if (::write(fd, kMagic, sizeof(kMagic)) != static_cast<ssize_t>(sizeof(kMagic)) ||
        ::fsync(fd) != 0) {
      Status status =
          Status::Unavailable("wal header write('" + options.path + "'): " + std::strerror(errno));
      ::close(fd);
      return status;
    }
  }
  uint64_t next_seq = 1;
  for (const WalSpend& spend : recovery.spends) {
    if (spend.seq >= next_seq) next_seq = spend.seq + 1;
  }
  // Aborted spends also consumed sequence numbers; records_read is a safe
  // upper bound that keeps new sequences unique without replaying aborts.
  next_seq += recovery.aborts_applied;
  return std::unique_ptr<LedgerWal>(
      new LedgerWal(options, fd, std::move(recovery), next_seq));
}

LedgerWal::LedgerWal(Options options, int fd, WalRecovery recovery, uint64_t next_seq)
    : options_(std::move(options)), recovery_(std::move(recovery)), fd_(fd),
      next_seq_(next_seq) {}

LedgerWal::~LedgerWal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::fsync(fd_);  // best-effort: flush any kBatch tail before closing
    ::close(fd_);
    fd_ = -1;
  }
}

Status LedgerWal::AppendRecord(const std::string& payload) {
  // Callers hold mutex_.
  if (poisoned_) {
    return Status::Unavailable("ledger wal is poisoned after a failed write; "
                               "restart to recover");
  }

  std::string frame;
  frame.reserve(12 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, Fnv1a64(payload.data(), payload.size()));
  frame += payload;

  // Deterministic chaos hook. kDrop models a write that failed cleanly
  // (nothing reached the file); kCorrupt models a write that hit the disk
  // bit-flipped. Either way the spend must not be admitted, and a corrupt
  // write additionally poisons the log: appending past garbage would strand
  // every later record behind the recovery truncation point.
  fault::FaultDecision decision =
      PPDP_FAULT_POINT("ledger.wal.append", fault::kMaskDrop | fault::kMaskCorrupt);
  if (decision.drop()) {
    AppendFailureCounter().Increment();
    return Status::Unavailable("ledger wal append dropped (fault ledger.wal.append)");
  }
  if (decision.corrupt()) {
    const size_t bit = decision.corrupt_bit % (payload.size() * 8);
    frame[12 + bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }

  size_t written = 0;
  while (written < frame.size()) {
    ssize_t n = ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      poisoned_ = true;  // unknown how much hit the disk: fail-stop
      AppendFailureCounter().Increment();
      return Status::Unavailable("ledger wal write: " + std::string(std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  if (decision.corrupt()) {
    poisoned_ = true;
    AppendFailureCounter().Increment();
    return Status::DataLoss("ledger wal append corrupted (fault ledger.wal.append); "
                            "log poisoned until restart");
  }
  unsynced_bytes_ += frame.size();
  ++appends_;
  AppendCounter().Increment();

  const bool should_sync = options_.sync == SyncPolicy::kAlways ||
                           unsynced_bytes_ >= options_.batch_bytes;
  if (should_sync) {
    fault::FaultDecision sync_decision =
        PPDP_FAULT_POINT("ledger.wal.fsync", fault::kMaskDrop);
    if (sync_decision.drop()) {
      // An fsync whose outcome is unknown leaves durability unknowable for
      // everything after it: fail-stop, like the write path.
      poisoned_ = true;
      AppendFailureCounter().Increment();
      return Status::Unavailable("ledger wal fsync dropped (fault ledger.wal.fsync)");
    }
    if (::fsync(fd_) != 0) {
      poisoned_ = true;
      AppendFailureCounter().Increment();
      return Status::Unavailable("ledger wal fsync: " + std::string(std::strerror(errno)));
    }
    unsynced_bytes_ = 0;
    ++syncs_;
    SyncCounter().Increment();
  }
  return Status::Ok();
}

Status LedgerWal::AppendSpend(std::string_view tenant, std::string_view label,
                              std::string_view mechanism, double epsilon,
                              uint64_t invocations, uint64_t* seq_out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t seq = next_seq_;
  std::string payload;
  payload.push_back(static_cast<char>(kRecordSpend));
  PutU64(&payload, seq);
  PutString(&payload, tenant);
  PutString(&payload, label);
  PutString(&payload, mechanism);
  PutDouble(&payload, epsilon);
  PutU64(&payload, invocations);
  PPDP_RETURN_IF_ERROR(AppendRecord(payload));
  ++next_seq_;
  if (seq_out != nullptr) *seq_out = seq;
  return Status::Ok();
}

Status LedgerWal::AppendAbort(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string payload;
  payload.push_back(static_cast<char>(kRecordAbort));
  PutU64(&payload, seq);
  return AppendRecord(payload);
}

Status LedgerWal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_) return Status::Unavailable("ledger wal is poisoned");
  if (fd_ < 0) return Status::FailedPrecondition("ledger wal is closed");
  if (::fsync(fd_) != 0) {
    poisoned_ = true;
    return Status::Unavailable("ledger wal fsync: " + std::string(std::strerror(errno)));
  }
  unsynced_bytes_ = 0;
  ++syncs_;
  SyncCounter().Increment();
  return Status::Ok();
}

bool LedgerWal::poisoned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return poisoned_;
}

uint64_t LedgerWal::appends() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appends_;
}

uint64_t LedgerWal::syncs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return syncs_;
}

}  // namespace ppdp::obs
