#ifndef PPDP_OBS_SAMPLER_H_
#define PPDP_OBS_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/json.h"
#include "common/status.h"

namespace ppdp::obs {

/// Background thread that snapshots the global MetricsRegistry every
/// `period_ms` into an append-only JSONL file, one "ppdp.timeseries.v2"
/// document per line — the offline companion to the live /metrics endpoint
/// (a scrape shows *now*; the series shows *how it got there*). v2 adds a
/// "process" section (RSS, peak RSS, user/system CPU) on top of v1; every
/// v1 key is emitted unchanged, so v1 readers keep working.
///
/// Start() writes an immediate first sample and Stop() writes a final one,
/// so even a run shorter than the period yields a usable two-point series.
/// Sampling never blocks the instrumented code: it reads the registry's
/// regular snapshot accessors on its own thread.
class TimeSeriesSampler {
 public:
  struct Options {
    std::string path;        ///< output JSONL file (truncated at Start)
    int period_ms = 500;     ///< snapshot interval; must be positive
  };

  explicit TimeSeriesSampler(Options options);
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;
  /// Stops the sampler if still running.
  ~TimeSeriesSampler();

  /// Opens the output file, writes the first sample, and starts the
  /// periodic thread. Calling Start twice is an error.
  Status Start();

  /// Writes one final sample, stops the thread, and closes the file.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Samples written so far (including the Start and Stop samples).
  uint64_t samples_written() const {
    return samples_written_.load(std::memory_order_acquire);
  }

  /// One snapshot of the global registry as a "ppdp.timeseries.v2" document:
  /// {"schema":...,"sample":N,"t_seconds":...,
  ///  "process":{rss_bytes,peak_rss_bytes,cpu_user_seconds,cpu_system_seconds},
  ///  "counters":{name:value,...},"gauges":{...},
  ///  "histograms":{name:{count,mean,p50,p95,max},...}}.
  /// Exposed for tests; `sample` is the 0-based sequence number.
  static JsonValue SampleDocument(uint64_t sample, double t_seconds);

 private:
  void Loop();
  void WriteSample();  ///< appends one line; requires file open

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> samples_written_{0};
  double start_seconds_ = 0.0;
  std::mutex mutex_;  ///< guards stop_requested_ + the file handle
  std::condition_variable cv_;
  bool stop_requested_ = false;
  void* file_ = nullptr;  ///< FILE*; void* keeps <cstdio> out of the header
  std::thread thread_;
};

}  // namespace ppdp::obs

#endif  // PPDP_OBS_SAMPLER_H_
