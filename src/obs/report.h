#ifndef PPDP_OBS_REPORT_H_
#define PPDP_OBS_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "common/table.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace ppdp::obs {

/// FNV-1a 64-bit digest of a file's bytes. The same hash family the IoT
/// envelope checksum uses; here it makes bench output CSVs auditable from
/// the run-report artifact alone (determinism across thread counts or
/// machines is checkable without shipping the CSVs).
Result<uint64_t> FileDigestFnv1a(const std::string& path);
/// 16 lowercase hex digits.
std::string DigestToHex(uint64_t digest);

/// Machine-readable record of how one bench run produced its numbers: the
/// exact invocation (flags/seed/threads/scale), build metadata, the armed
/// fault plan, per-phase wall+CPU timings aggregated from TraceSpans,
/// latency percentiles from MetricsRegistry histograms, every privacy
/// ledger's audit trail, and digests of every output CSV. Serialized as
/// bench_out/BENCH_<name>.json by the bench harness and diffed by
/// tools/ppdp_benchstat.
struct RunReport {
  static constexpr int kSchemaVersion = 1;
  /// Document type tag ("ppdp.bench.v1").
  static const char* SchemaTag();

  std::string name;    ///< short bench name ("dp_synthesis")
  std::string binary;  ///< argv[0] basename ("bench_dp_synthesis")
  std::map<std::string, std::string> flags;
  uint64_t seed = 0;
  int threads = 0;
  double scale = 1.0;

  struct BuildInfo {
    std::string compiler;   ///< e.g. "g++ 13.2.0" (__VERSION__)
    std::string build_type; ///< "release" (NDEBUG) or "debug"
    std::string platform;   ///< e.g. "linux-64bit"
    long cxx_standard = 0;  ///< __cplusplus
  };
  BuildInfo build;

  struct FaultInfo {
    bool armed = false;
    uint64_t seed = 0;
    double rate = 0.0;
    std::map<std::string, double> point_rates;
  };
  FaultInfo fault;

  std::vector<TraceRecorder::PhaseStats> phases;
  std::vector<MetricsRegistry::HistogramSummary> histograms;
  std::vector<std::pair<std::string, uint64_t>> counters;

  /// One audited ledger (a bench can run several, e.g. per sweep point).
  struct LedgerAudit {
    std::string name;
    PrivacyLedger::BudgetSnapshot budget;
    std::vector<PrivacyLedger::Entry> entries;
  };
  std::vector<LedgerAudit> ledgers;

  struct OutputDigest {
    std::string name;  ///< table name as passed to BenchEnv::Emit
    std::string path;
    uint64_t bytes = 0;
    std::string fnv1a;  ///< DigestToHex of the file content
  };
  std::vector<OutputDigest> outputs;

  double wall_seconds = 0.0;  ///< process wall time at emission
  double cpu_seconds = 0.0;   ///< process CPU time at emission

  struct FlightStats {
    uint64_t recorded = 0;
    uint64_t retained = 0;
    bool dumped = false;
  };
  FlightStats flight;

  /// SLO attainment rows (bench_serve with --slo_config or defaults). Only
  /// serialized when non-empty, so pre-v10 baselines and non-serving
  /// benches are byte-unchanged; readers treat an absent stanza as "no SLOs
  /// measured", never as a violation.
  std::vector<SloAttainment> slos;

  /// Link to the sampling profile captured alongside this run (absent when
  /// --profile_hz=0, the default — the zero-overhead path writes nothing).
  struct ProfileInfo {
    bool enabled = false;
    int hz = 0;
    std::string path;         ///< the ppdp.profile.v1 JSON
    std::string folded_path;  ///< collapsed stacks for flamegraph/speedscope
    uint64_t samples = 0;
    uint64_t dropped = 0;
  };
  ProfileInfo profile;

  JsonValue ToJson() const;
  Status WriteJson(const std::string& path) const;
  /// Tolerant reader: unknown keys are ignored, so newer writers stay
  /// diffable against older baselines. Fails on a wrong schema tag.
  static Result<RunReport> FromJson(const JsonValue& doc);
  static Result<RunReport> Load(const std::string& path);
};

/// Build metadata from compile-time macros.
RunReport::BuildInfo CurrentBuildInfo();

/// CPU seconds consumed by the whole process so far.
double ProcessCpuSeconds();

/// Fills `report`'s telemetry sections from the obs-layer global collectors:
/// build info, trace phases, metric histograms/counters, flight-recorder
/// stats, and wall/CPU totals. Flags/seed/outputs/ledgers/fault stay
/// untouched — the bench harness owns those (fault lives in ppdp_fault,
/// which links against this library, so the dependency cannot point back).
void CollectGlobalTelemetry(RunReport* report);

/// Checks the invariants CI and report_test rely on: schema tag + version,
/// the required top-level keys with the right JSON kinds, and well-formed
/// phase/output entries. Returns the first violation.
Status ValidateReportJson(const JsonValue& doc);

/// ---- ppdp_benchstat: phase-by-phase perf diff with a noise threshold ----

struct DiffOptions {
  /// Relative slowdown tolerated before a phase counts as regressed
  /// (0.25 = +25%).
  double threshold = 0.25;
  /// Phases must additionally slow down by at least this many absolute
  /// milliseconds — sub-noise phases can triple without meaning anything.
  double min_ms = 5.0;
  /// Also fail when an output digest present in both reports differs
  /// (determinism audit; off by default since baselines may be produced by
  /// a different compiler).
  bool check_digests = false;
  /// Relative growth of a phase's peak RSS tolerated before the phase
  /// counts as a memory regression (0.5 = +50%). 0 disables the memory
  /// gate — the default, since pre-v6 baselines carry no memory numbers.
  double mem_threshold = 0.0;
  /// Peak RSS must additionally grow by this many absolute bytes.
  uint64_t min_mem_bytes = 16ull << 20;
};

struct PhaseDelta {
  std::string name;
  double baseline_ms = 0.0;
  double current_ms = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when baseline is 0)
  bool regressed = false;
  bool only_in_baseline = false;
  bool only_in_current = false;
  uint64_t baseline_rss_peak = 0;  ///< bytes; 0 when the report predates v6
  uint64_t current_rss_peak = 0;
  bool mem_regressed = false;  ///< only when DiffOptions::mem_threshold > 0
};

struct ReportDiff {
  std::vector<PhaseDelta> phases;  ///< baseline order, then new phases
  std::vector<std::string> digest_mismatches;
  bool regressed = false;  ///< any phase regression (or digest mismatch when checked)
  double baseline_total_ms = 0.0;
  double current_total_ms = 0.0;

  /// phase | baseline ms | current ms | ratio | verdict table plus a TOTAL row.
  Table Summary() const;
};

/// Diffs `current` against `baseline`. Phases present on only one side are
/// reported but never count as regressions (benches evolve); slowdowns
/// beyond both the relative threshold and the absolute floor do.
ReportDiff DiffReports(const RunReport& baseline, const RunReport& current,
                       const DiffOptions& options);

}  // namespace ppdp::obs

#endif  // PPDP_OBS_REPORT_H_
