#ifndef PPDP_OBS_METRICS_H_
#define PPDP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/table.h"

namespace ppdp::obs {

/// Monotonically increasing event count. Lock-free; safe to increment from
/// any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, remaining budget, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// implicit overflow bucket counts the rest. Tracks count/sum/min/max for
/// exact means, and keeps the first kExactSampleCap raw observations so the
/// latency percentiles published in run reports are *exact* for every
/// realistic bench population (26 benches observe well under the cap) and
/// only degrade to bucket interpolation beyond it. Thread-safe (mutex;
/// observations are rare enough that contention is irrelevant here).
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  double mean() const;  ///< 0 when empty
  double min() const;   ///< 0 when empty
  double max() const;   ///< 0 when empty
  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_counts()[i] pairs with bounds()[i]; the final entry is the
  /// overflow bucket.
  std::vector<uint64_t> bucket_counts() const;
  /// Prometheus-style cumulative counts: entry i is the number of
  /// observations <= bounds()[i]; the final entry is the "+Inf" bucket and
  /// always equals count(). (bucket_counts() is per-bucket, which is what
  /// the JSON exports keep emitting; the text exposition needs `le`
  /// cumulative semantics.)
  std::vector<uint64_t> CumulativeBucketCounts() const;
  /// Linear-interpolated quantile estimate from the buckets, q in [0, 1].
  double ApproxQuantile(double q) const;
  /// Best available quantile: exact (linear interpolation over the retained
  /// raw samples) while count() <= kExactSampleCap, bucket-interpolated
  /// after; 0 when empty, the sample itself when count() == 1.
  double Quantile(double q) const;
  void Reset();

  /// Raw observations retained for exact quantiles.
  static constexpr size_t kExactSampleCap = 4096;

 private:
  double QuantileLocked(double q) const;        // requires mutex_ held
  double BucketQuantileLocked(double q) const;  // requires mutex_ held

  std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> counts_;  ///< bounds_.size() + 1 entries
  std::vector<double> samples_;   ///< first kExactSampleCap observations
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Default latency buckets in seconds: 10µs .. 10s, one per decade plus
/// half-decades — wide enough for both per-iteration and per-phase timings.
const std::vector<double>& DefaultLatencyBoundsSeconds();

/// Maps an internal metric name (dotted, e.g. "classify.ica.rounds") onto
/// the Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid
/// character becomes '_', and a leading digit gets a '_' prefix. Empty
/// input becomes "_".
std::string SanitizeMetricName(std::string_view name);

/// Process-wide named-metric registry. Lookup creates on first use and
/// returns a stable reference (entries are never removed; Reset() zeroes
/// values but keeps registrations, so cached references stay valid).
///
///   static Counter& sweeps = MetricsRegistry::Global().counter("ica.sweeps");
///   sweeps.Increment();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name ignore `bounds`.
  Histogram& histogram(const std::string& name, const std::vector<double>& bounds = {});

  /// One row per metric: metric, type, count, value, mean, p50, p95, p99,
  /// max. Counters/gauges fill count/value only. Rows are name-sorted.
  Table Snapshot() const;

  /// Structured read-outs for RunReport serialization (name-sorted).
  struct HistogramSummary {
    std::string name;
    uint64_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  std::vector<HistogramSummary> HistogramSummaries() const;
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, double>> GaugeValues() const;

  /// Compact JSON object keyed by metric name; histograms include bucket
  /// bounds and counts.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Prometheus text exposition format 0.0.4: every metric gets a
  /// `# HELP`/`# TYPE` pair followed by its samples, with names passed
  /// through SanitizeMetricName. Histograms render cumulative
  /// `_bucket{le="..."}` series (terminated by `le="+Inf"`) plus `_sum` and
  /// `_count`. When two internal names sanitize to the same exposition
  /// name, the first (in name-sorted order) wins and later ones are
  /// skipped — duplicate series would make the whole scrape invalid.
  std::string ToPrometheus() const;

  /// Zeroes every metric (registrations survive). For tests and benches.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Strict structural check of a Prometheus text-exposition-0.0.4 document,
/// as produced by MetricsRegistry::ToPrometheus and consumed by a scraper:
/// every sample name obeys the name grammar and is preceded by `# HELP` +
/// `# TYPE` lines, a metric's samples are contiguous and typed at most
/// once, sample values parse as doubles (NaN/+Inf/-Inf spellings allowed),
/// and each histogram's `_bucket{le=...}` series is cumulative
/// (non-decreasing), ends at `le="+Inf"`, and agrees with its `_sum` /
/// `_count` samples. Shared by telemetry_test and the ppdp_promcheck CI
/// gate so a scrape that Prometheus would reject fails fast.
Status ValidatePrometheusText(std::string_view text);

}  // namespace ppdp::obs

#endif  // PPDP_OBS_METRICS_H_
