#ifndef PPDP_IOT_CHANNEL_H_
#define PPDP_IOT_CHANNEL_H_

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/rng.h"
#include "common/table.h"
#include "fault/fault.h"
#include "fault/retry.h"
#include "iot/collection.h"

namespace ppdp::iot {

/// A perturbed reading framed for transmission over an unreliable link:
/// device + per-device sequence number identify the reading end-to-end (the
/// dedup key), and the checksum detects in-flight corruption.
struct Envelope {
  uint64_t device = 0;
  uint64_t seq = 0;
  PerturbedReading reading;
  uint64_t checksum = 0;
};

/// FNV-1a over the envelope's identifying fields and payload (checksum
/// field excluded).
uint64_t EnvelopeChecksum(const Envelope& envelope);

/// Fixed wire size of an encoded envelope: 8-byte magic + five 64-bit
/// little-endian words (device, seq, sensor, value, epsilon bits) + the
/// 64-bit checksum.
inline constexpr size_t kEnvelopeWireBytes = 56;

/// Serializes the envelope into its kEnvelopeWireBytes frame. What actually
/// crosses the (simulated) link: fault-injected corruption flips bits in
/// these bytes, and the receiver re-derives the struct via DecodeEnvelope.
std::string EncodeEnvelope(const Envelope& envelope);

/// Parses one wire frame. Structural validation only — wrong size, wrong
/// magic, or a non-finite/negative epsilon payload is kInvalidArgument;
/// checksum verification stays with the receiver (EnvelopeChecksum), which
/// counts mismatches rather than erroring. Every accepted frame re-encodes
/// byte-identically.
Result<Envelope> DecodeEnvelope(std::string_view bytes);

/// Transport accounting of one channel. `sent` counts distinct readings
/// accepted for transmission; everything else counts what the unreliable
/// link did to them.
struct ChannelReport {
  uint64_t sent = 0;              ///< distinct readings handed to Send()
  uint64_t delivered = 0;         ///< distinct readings the server ingested
  uint64_t attempts = 0;          ///< transmissions on the wire (retries included)
  uint64_t retries = 0;           ///< attempts beyond each reading's first
  uint64_t drops = 0;             ///< injected in-flight losses
  uint64_t duplicates = 0;        ///< injected replays put on the wire
  uint64_t corruptions = 0;       ///< injected bit flips put on the wire
  uint64_t checksum_rejects = 0;  ///< corrupted arrivals detected and refused
  uint64_t dedup_hits = 0;        ///< redundant copies the receiver suppressed
  uint64_t gave_up = 0;           ///< readings never acknowledged in budget
  double virtual_ms = 0.0;        ///< virtual clock spent on backoff + delays

  /// Fraction of accepted readings that never reached the server.
  double ObservedLossRate() const {
    if (sent == 0) return 0.0;
    return 1.0 - static_cast<double>(delivered) / static_cast<double>(sent);
  }

  /// One-row-per-field accounting table (field, value).
  Table Summary() const;
};

/// At-least-once delivery of already-perturbed readings from a device's
/// PrivacyProxy to the AggregationServer, correct under the failure model
/// of the "iot.send" fault point (drops, duplicates, bit corruption,
/// latency).
///
/// The privacy-safety invariant: Send() transmits bytes whose privacy cost
/// was charged exactly once, at perturbation time inside
/// PrivacyProxy::Report. Retransmission replays the *same* perturbed
/// value — never a re-randomization — so no failure/retry pattern can
/// spend a user's budget twice, and the receiver's sequence-number dedup
/// keeps the server's estimate unbiased under duplication. Both ends of
/// the transport are modeled in-process; time is virtual (backoff and
/// injected latency advance a logical clock), so retry schedules replay
/// byte-identically from a seed and tests never sleep.
class ResilientChannel {
 public:
  /// `server` must outlive the channel. `seed` drives retry jitter only —
  /// fault behavior comes from the globally armed FaultPlan.
  ResilientChannel(AggregationServer* server, fault::RetryPolicy policy, uint64_t seed,
                   uint64_t device = 0);

  /// Transmits one perturbed reading until the receiver acknowledges it or
  /// the retry policy gives up. Returns:
  ///  * OK — acknowledged (possibly after retransmissions),
  ///  * kUnavailable — attempts exhausted (the reading is lost; its budget
  ///    is already spent, which the loss report surfaces),
  ///  * kDeadlineExceeded — the per-reading deadline lapsed,
  ///  * any server-side Ingest error, annotated (not retried: a reading
  ///    the server rejects deterministically can never succeed).
  Status Send(const PerturbedReading& reading);

  const ChannelReport& report() const { return report_; }
  const fault::RetryPolicy& policy() const { return policy_; }
  uint64_t device() const { return device_; }
  double VirtualNowMs() const { return clock_ms_; }

 private:
  /// One wire attempt: encodes the envelope, applies the fault decision to
  /// the frame bytes, delivers to the receiver endpoint, returns true when
  /// acknowledged.
  bool TransmitOnce(const Envelope& envelope);

  /// Receiver endpoint: frame decode, checksum verification, sequence
  /// dedup, ingest. Returns true to acknowledge. Deterministic server
  /// rejections are stored in ingest_error_ and acknowledged (retrying
  /// cannot help).
  bool Deliver(std::string_view wire);

  AggregationServer* server_;
  fault::RetryPolicy policy_;
  Rng rng_;
  uint64_t device_;
  uint64_t next_seq_ = 0;
  double clock_ms_ = 0.0;
  std::set<uint64_t> seen_;  ///< receiver-side acknowledged sequence numbers
  Status ingest_error_;      ///< deterministic server rejection of the in-flight send
  ChannelReport report_;
};

}  // namespace ppdp::iot

#endif  // PPDP_IOT_CHANNEL_H_
