#ifndef PPDP_IOT_COLLECTION_H_
#define PPDP_IOT_COLLECTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "dp/mechanisms.h"
#include "obs/ledger.h"

namespace ppdp::iot {

/// The Section-6.1 research program made concrete: privacy-preserving
/// multi-modal sensory data collection for the Internet of Things.
///
///  * Toolset 1 — "enable users to express, regulate and enforce their
///    privacy preferences": a per-sensor PrivacyPreference vocabulary and a
///    PrivacyProxy that perturbs every reading client-side (k-ary
///    randomized response) under a per-user budget, so raw values never
///    leave the device.
///  * Toolset 2 — "understand the tradeoff between service quality and
///    privacy": an AggregationServer that debiases the perturbed stream
///    into population frequency estimates, and a ServiceQuality metric
///    (L1 distance of estimated vs true frequencies) the benches sweep
///    against ε.

/// One categorical sensor modality (activity class, room occupancy bucket,
/// coarse location cell, ...).
struct SensorSchema {
  std::string name;
  size_t domain_size = 2;
};

/// A user's per-sensor privacy preference: the local-DP budget the user is
/// willing to spend per reading of that sensor; 0 means "never report".
struct PrivacyPreference {
  double epsilon_per_reading = 1.0;
  double total_budget = 50.0;  ///< lifetime budget across this sensor's readings
};

/// One perturbed reading as it leaves the device.
struct PerturbedReading {
  size_t sensor = 0;
  size_t value = 0;      ///< already randomized
  double epsilon = 0.0;  ///< budget this reading consumed
};

/// Client-side enforcement of the user's preferences (Toolset 1). Owns a
/// per-sensor budget accountant; once a sensor's lifetime budget is
/// exhausted — or the preference is "never" — readings are refused rather
/// than silently weakened.
class PrivacyProxy {
 public:
  /// Preferences must match the schema size.
  PrivacyProxy(std::vector<SensorSchema> schema, std::vector<PrivacyPreference> preferences,
               uint64_t seed);

  /// Perturbs one raw reading of `sensor`. Fails with kFailedPrecondition
  /// when the sensor's lifetime budget cannot cover another reading,
  /// kInvalidArgument on bad sensor/value, and kUnavailable when the
  /// "iot.report" fault point fires (simulated device-side failure).
  ///
  /// Budget-safety invariant: ε is charged exactly once, at perturbation
  /// time, and only after every validation has passed — a refused or
  /// fault-aborted call leaves RemainingBudget untouched, and the returned
  /// reading may be retransmitted any number of times at no further cost.
  Result<PerturbedReading> Report(size_t sensor, size_t raw_value);

  /// Remaining lifetime budget of a sensor.
  double RemainingBudget(size_t sensor) const;

  /// Mirrors every successful Report into `ledger` (one Spend per reading,
  /// labeled by sensor name, mechanism "randomized-response"). The ledger
  /// must outlive the proxy; pass nullptr to detach. A ledger whose
  /// enforcement refuses the spend vetoes the reading *before* any budget
  /// is charged — the audit trail and the device agree by construction.
  void AttachLedger(obs::PrivacyLedger* ledger) { ledger_ = ledger; }

  const std::vector<SensorSchema>& schema() const { return schema_; }

 private:
  std::vector<SensorSchema> schema_;
  std::vector<PrivacyPreference> preferences_;
  std::vector<double> spent_;
  Rng rng_;
  obs::PrivacyLedger* ledger_ = nullptr;
};

/// Server-side estimation (Toolset 2): collects perturbed readings and
/// produces debiased per-sensor frequency estimates.
class AggregationServer {
 public:
  explicit AggregationServer(std::vector<SensorSchema> schema);

  /// Ingests one reading; its epsilon must match the sensor's first
  /// reading's epsilon (the estimator assumes one mechanism per sensor).
  Status Ingest(const PerturbedReading& reading);

  /// Debiased frequency estimate for a sensor (sums to ~1; entries clamped
  /// to >= 0 then renormalized). kFailedPrecondition with no data.
  Result<std::vector<double>> EstimateFrequencies(size_t sensor) const;

  /// A frequency estimate that is honest about transport loss. `degraded`
  /// is the DegradedResult path: the estimate is still produced, but it is
  /// explicitly flagged (and its confidence interval widened) instead of
  /// silently pretending the lost readings never existed.
  struct RobustEstimate {
    std::vector<double> frequencies;
    /// Loss-aware 95% half-width per component: the randomized-response
    /// debiasing slope × the binomial sampling bound on the readings that
    /// actually arrived. Fewer arrivals ⇒ wider interval.
    double ci_halfwidth = 0.0;
    size_t received = 0;
    size_t expected = 0;
    double loss_rate = 0.0;  ///< 1 − received/expected, clamped to [0, 1]
    bool degraded = false;   ///< loss_rate exceeded the caller's threshold
  };

  /// Frequency estimate from the readings that survived the transport,
  /// annotated with loss-aware confidence. `expected` is how many unique
  /// readings were sent toward this sensor (e.g. ChannelReport::sent);
  /// the estimate is flagged degraded when more than `degraded_threshold`
  /// of them never arrived. kFailedPrecondition with no data,
  /// kInvalidArgument on a bad sensor/threshold or expected < received.
  Result<RobustEstimate> EstimateWithLoss(size_t sensor, size_t expected,
                                          double degraded_threshold = 0.1) const;

  size_t ReadingCount(size_t sensor) const;

 private:
  std::vector<SensorSchema> schema_;
  std::vector<std::vector<double>> counts_;   ///< raw perturbed counts
  std::vector<double> epsilon_;               ///< per-sensor mechanism budget (0 = unset)
  std::vector<size_t> totals_;
};

/// Service quality of an estimate against the true frequencies: 1 − L1/2
/// (total-variation agreement), in [0, 1]; 1 = perfect.
double ServiceQuality(const std::vector<double>& estimated, const std::vector<double>& truth);

}  // namespace ppdp::iot

#endif  // PPDP_IOT_COLLECTION_H_
