#include "iot/channel.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

namespace ppdp::iot {

namespace {

void HashMix(uint64_t& h, uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xFFu;
    h *= 0x100000001B3ULL;
  }
}

/// Frame magic: version-tagged so a future layout can bump the last byte.
constexpr char kEnvelopeMagic[8] = {'P', 'P', 'D', 'P', 'i', 'o', 't', '1'};

void PutWord(std::string* out, uint64_t word) {
  for (int byte = 0; byte < 8; ++byte) {
    out->push_back(static_cast<char>((word >> (8 * byte)) & 0xFFu));
  }
}

uint64_t GetWord(std::string_view bytes, size_t offset) {
  uint64_t word = 0;
  for (int byte = 0; byte < 8; ++byte) {
    word |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[offset + static_cast<size_t>(byte)]))
            << (8 * byte);
  }
  return word;
}

}  // namespace

uint64_t EnvelopeChecksum(const Envelope& envelope) {
  uint64_t h = 0xCBF29CE484222325ULL;
  HashMix(h, envelope.device);
  HashMix(h, envelope.seq);
  HashMix(h, static_cast<uint64_t>(envelope.reading.sensor));
  HashMix(h, static_cast<uint64_t>(envelope.reading.value));
  uint64_t epsilon_bits = 0;
  static_assert(sizeof(envelope.reading.epsilon) == sizeof(epsilon_bits));
  std::memcpy(&epsilon_bits, &envelope.reading.epsilon, sizeof(epsilon_bits));
  HashMix(h, epsilon_bits);
  return h;
}

std::string EncodeEnvelope(const Envelope& envelope) {
  std::string wire(kEnvelopeMagic, sizeof(kEnvelopeMagic));
  wire.reserve(kEnvelopeWireBytes);
  PutWord(&wire, envelope.device);
  PutWord(&wire, envelope.seq);
  PutWord(&wire, static_cast<uint64_t>(envelope.reading.sensor));
  PutWord(&wire, static_cast<uint64_t>(envelope.reading.value));
  uint64_t epsilon_bits = 0;
  std::memcpy(&epsilon_bits, &envelope.reading.epsilon, sizeof(epsilon_bits));
  PutWord(&wire, epsilon_bits);
  PutWord(&wire, envelope.checksum);
  return wire;
}

Result<Envelope> DecodeEnvelope(std::string_view bytes) {
  if (bytes.size() != kEnvelopeWireBytes) {
    return Status::InvalidArgument("envelope frame must be " + std::to_string(kEnvelopeWireBytes) +
                                   " bytes, got " + std::to_string(bytes.size()));
  }
  if (std::memcmp(bytes.data(), kEnvelopeMagic, sizeof(kEnvelopeMagic)) != 0) {
    return Status::InvalidArgument("bad envelope magic");
  }
  Envelope envelope;
  envelope.device = GetWord(bytes, 8);
  envelope.seq = GetWord(bytes, 16);
  envelope.reading.sensor = static_cast<size_t>(GetWord(bytes, 24));
  envelope.reading.value = static_cast<size_t>(GetWord(bytes, 32));
  const uint64_t epsilon_bits = GetWord(bytes, 40);
  std::memcpy(&envelope.reading.epsilon, &epsilon_bits, sizeof(epsilon_bits));
  if (!std::isfinite(envelope.reading.epsilon) || envelope.reading.epsilon < 0.0) {
    return Status::InvalidArgument("envelope epsilon must be finite and non-negative");
  }
  envelope.checksum = GetWord(bytes, 48);
  return envelope;
}

Table ChannelReport::Summary() const {
  Table table({"field", "value"});
  table.AddRow({"sent", std::to_string(sent)});
  table.AddRow({"delivered", std::to_string(delivered)});
  table.AddRow({"attempts", std::to_string(attempts)});
  table.AddRow({"retries", std::to_string(retries)});
  table.AddRow({"drops", std::to_string(drops)});
  table.AddRow({"duplicates", std::to_string(duplicates)});
  table.AddRow({"corruptions", std::to_string(corruptions)});
  table.AddRow({"checksum_rejects", std::to_string(checksum_rejects)});
  table.AddRow({"dedup_hits", std::to_string(dedup_hits)});
  table.AddRow({"gave_up", std::to_string(gave_up)});
  table.AddRow({"observed_loss", Table::FormatDouble(ObservedLossRate(), 4)});
  table.AddRow({"virtual_ms", Table::FormatDouble(virtual_ms, 3)});
  return table;
}

ResilientChannel::ResilientChannel(AggregationServer* server, fault::RetryPolicy policy,
                                   uint64_t seed, uint64_t device)
    : server_(server), policy_(std::move(policy)), rng_(seed), device_(device) {
  PPDP_CHECK(server_ != nullptr) << "ResilientChannel needs an aggregation server";
  Status valid = policy_.Validate();
  PPDP_CHECK(valid.ok()) << valid.ToString();
}

bool ResilientChannel::Deliver(std::string_view wire) {
  // A frame that does not decode (corrupted magic/epsilon bits) and a frame
  // whose payload mismatches its checksum are the same event from the
  // transport's perspective: a damaged arrival, refused so the sender
  // retransmits the intact bytes.
  Result<Envelope> decoded = DecodeEnvelope(wire);
  if (!decoded.ok() || EnvelopeChecksum(*decoded) != decoded->checksum) {
    ++report_.checksum_rejects;
    return false;  // nack: sender retransmits the intact bytes
  }
  const Envelope& envelope = *decoded;
  if (seen_.count(envelope.seq) > 0) {
    static obs::Counter& dedup = obs::MetricsRegistry::Global().counter("channel.dedup_hits");
    dedup.Increment();
    ++report_.dedup_hits;
    return true;  // redundant copy: ack without re-ingesting
  }
  Status ingested = server_->Ingest(envelope.reading);
  if (!ingested.ok()) {
    // A deterministic rejection (bad sensor, mixed epsilons, ...) — record
    // it and ack so the sender stops retrying a hopeless payload.
    ingest_error_ = ingested.Annotate("ResilientChannel receiver");
    return true;
  }
  seen_.insert(envelope.seq);
  ++report_.delivered;
  return true;
}

bool ResilientChannel::TransmitOnce(const Envelope& envelope) {
  ++report_.attempts;
  fault::FaultDecision decision = PPDP_FAULT_POINT("iot.send", fault::kMaskAll);
  if (decision.delay()) {
    clock_ms_ += decision.delay_ms;
    report_.virtual_ms += decision.delay_ms;
  }
  if (decision.drop()) {
    ++report_.drops;
    return false;  // lost in flight; no ack will arrive
  }
  std::string wire = EncodeEnvelope(envelope);
  if (decision.corrupt()) {
    // Bit flips land anywhere in the frame — magic, payload, or the
    // checksum itself; the receiver must refuse all of them.
    ++report_.corruptions;
    const size_t bit = static_cast<size_t>(decision.corrupt_bit) % (8 * wire.size());
    wire[bit / 8] = static_cast<char>(static_cast<uint8_t>(wire[bit / 8]) ^ (1u << (bit % 8)));
  }
  bool acked = Deliver(wire);
  if (decision.duplicate()) {
    // The network replays the same bytes; the receiver's dedup (or the
    // checksum) must keep the second copy from biasing the estimate.
    ++report_.duplicates;
    (void)Deliver(wire);
  }
  return acked;
}

Status ResilientChannel::Send(const PerturbedReading& reading) {
  obs::TraceSpan span("channel.send");
  static obs::Counter& retries_metric = obs::MetricsRegistry::Global().counter("channel.retries");
  static obs::Counter& gave_up_metric = obs::MetricsRegistry::Global().counter("channel.gave_up");
  static obs::Counter& attempts_metric =
      obs::MetricsRegistry::Global().counter("channel.attempts");
  static obs::Gauge& in_flight_gauge = obs::MetricsRegistry::Global().gauge("channel.in_flight");
  static obs::Gauge& retransmits_gauge =
      obs::MetricsRegistry::Global().gauge("channel.retransmits");
  static obs::Gauge& dedup_gauge = obs::MetricsRegistry::Global().gauge("channel.dedup_hits");
  static obs::Gauge& virtual_ms_gauge =
      obs::MetricsRegistry::Global().gauge("channel.virtual_ms");

  // Live in-flight count across every channel in the process: +1 while this
  // reading is unacknowledged, decremented on every exit path below. The
  // guard also refreshes the last-write-wins transport gauges so a scrape
  // between Send calls sees this channel's running totals.
  in_flight_gauge.Add(1.0);
  struct InFlightGuard {
    obs::Gauge& in_flight;
    obs::Gauge& retransmits;
    obs::Gauge& dedup;
    obs::Gauge& virtual_ms;
    const ResilientChannel* channel;
    ~InFlightGuard() {
      in_flight.Add(-1.0);
      retransmits.Set(static_cast<double>(channel->report().retries));
      dedup.Set(static_cast<double>(channel->report().dedup_hits));
      virtual_ms.Set(channel->VirtualNowMs());
    }
  } in_flight{in_flight_gauge, retransmits_gauge, dedup_gauge, virtual_ms_gauge, this};
  attempts_metric.Increment();

  Envelope envelope;
  envelope.device = device_;
  envelope.seq = next_seq_++;
  envelope.reading = reading;
  envelope.checksum = EnvelopeChecksum(envelope);
  ++report_.sent;

  ingest_error_ = Status::Ok();
  const double start_ms = clock_ms_;
  for (uint64_t attempt = 0;; ++attempt) {
    if (!policy_.AllowsAttempt(attempt, clock_ms_ - start_ms)) {
      ++report_.gave_up;
      gave_up_metric.Increment();
      obs::FlightRecorder::Global().Record(
          {0.0, "retry", "WARN", "iot.send",
           "gave up on seq " + std::to_string(envelope.seq) + " after " +
               std::to_string(attempt) + " attempts, " +
               Table::FormatDouble(clock_ms_ - start_ms, 3) + " virtual ms"});
      PPDP_LOG(WARN) << "reading lost: retry budget exhausted"
                     << obs::Field("seq", envelope.seq) << obs::Field("attempts", attempt)
                     << obs::Field("elapsed_ms", clock_ms_ - start_ms);
      if (attempt >= policy_.max_attempts) {
        return Status::Unavailable("reading " + std::to_string(envelope.seq) +
                                   " unacknowledged after " + std::to_string(attempt) +
                                   " attempts");
      }
      return Status::DeadlineExceeded("reading " + std::to_string(envelope.seq) +
                                      " missed its delivery deadline");
    }
    if (attempt > 0) {
      ++report_.retries;
      retries_metric.Increment();
      obs::FlightRecorder::Global().Record(
          {0.0, "retry", "INFO", "iot.send",
           "retransmit seq " + std::to_string(envelope.seq) + " attempt " +
               std::to_string(attempt + 1)});
    }
    if (TransmitOnce(envelope)) {
      // Acked — but surface a deterministic server rejection to the caller.
      return ingest_error_;
    }
    const double backoff = policy_.BackoffMs(attempt, rng_);
    clock_ms_ += backoff;
    report_.virtual_ms += backoff;
  }
}

}  // namespace ppdp::iot
