#include "iot/collection.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "fault/fault.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace ppdp::iot {

PrivacyProxy::PrivacyProxy(std::vector<SensorSchema> schema,
                           std::vector<PrivacyPreference> preferences, uint64_t seed)
    : schema_(std::move(schema)), preferences_(std::move(preferences)), rng_(seed) {
  PPDP_CHECK(schema_.size() == preferences_.size())
      << "one preference per sensor required: " << schema_.size() << " sensors, "
      << preferences_.size() << " preferences";
  for (const SensorSchema& s : schema_) {
    PPDP_CHECK(s.domain_size >= 2) << "sensor " << s.name << " needs a domain of at least 2";
  }
  for (const PrivacyPreference& p : preferences_) {
    PPDP_CHECK(p.epsilon_per_reading >= 0.0);
    PPDP_CHECK(p.total_budget >= 0.0);
  }
  spent_.assign(schema_.size(), 0.0);
}

Result<PerturbedReading> PrivacyProxy::Report(size_t sensor, size_t raw_value) {
  if (sensor >= schema_.size()) return Status::InvalidArgument("unknown sensor");
  if (raw_value >= schema_[sensor].domain_size) {
    return Status::InvalidArgument("reading out of the sensor's domain");
  }
  static obs::Counter& reports = obs::MetricsRegistry::Global().counter("iot.proxy.reports");
  static obs::Counter& refused = obs::MetricsRegistry::Global().counter("iot.proxy.refused");
  const PrivacyPreference& pref = preferences_[sensor];
  if (pref.epsilon_per_reading <= 0.0) {
    refused.Increment();
    return Status::FailedPrecondition("user preference forbids reporting " +
                                      schema_[sensor].name);
  }
  if (spent_[sensor] + pref.epsilon_per_reading > pref.total_budget + 1e-12) {
    refused.Increment();
    PPDP_LOG(WARN) << "sensor budget exhausted" << obs::Field("sensor", schema_[sensor].name)
                   << obs::Field("spent", spent_[sensor])
                   << obs::Field("budget", pref.total_budget);
    return Status::FailedPrecondition("lifetime privacy budget of " + schema_[sensor].name +
                                      " exhausted");
  }
  // Every validation has passed. A device-side fault injected here (sensor
  // glitch, process crash before the mechanism ran) must abort before any
  // budget is charged — the caller sees kUnavailable and RemainingBudget
  // is untouched.
  fault::FaultDecision fault_decision = PPDP_FAULT_POINT("iot.report", fault::kMaskDrop);
  if (fault_decision.drop()) {
    refused.Increment();
    return fault_decision.AsStatus("iot.report");
  }
  // The attached ledger's enforcement is a *pre*-charge veto so the audit
  // trail can never disagree with the device's own accounting.
  if (ledger_ != nullptr) {
    PPDP_RETURN_IF_ERROR(ledger_
                             ->Spend(schema_[sensor].name, "randomized-response",
                                     pref.epsilon_per_reading)
                             .Annotate("PrivacyProxy::Report"));
  }
  reports.Increment();
  // Perturbation is the privacy event: ε is charged here, exactly once.
  // The returned reading is safe to retransmit — resending these bytes
  // reveals nothing more about the raw value.
  dp::RandomizedResponse mechanism(schema_[sensor].domain_size, pref.epsilon_per_reading);
  PerturbedReading reading;
  reading.sensor = sensor;
  reading.value = mechanism.Perturb(raw_value, rng_);
  reading.epsilon = pref.epsilon_per_reading;
  spent_[sensor] += pref.epsilon_per_reading;
  return reading;
}

double PrivacyProxy::RemainingBudget(size_t sensor) const {
  PPDP_CHECK(sensor < schema_.size());
  return preferences_[sensor].total_budget - spent_[sensor];
}

AggregationServer::AggregationServer(std::vector<SensorSchema> schema)
    : schema_(std::move(schema)) {
  counts_.resize(schema_.size());
  for (size_t s = 0; s < schema_.size(); ++s) counts_[s].assign(schema_[s].domain_size, 0.0);
  epsilon_.assign(schema_.size(), 0.0);
  totals_.assign(schema_.size(), 0);
}

Status AggregationServer::Ingest(const PerturbedReading& reading) {
  if (reading.sensor >= schema_.size()) return Status::InvalidArgument("unknown sensor");
  if (reading.value >= schema_[reading.sensor].domain_size) {
    return Status::InvalidArgument("reading out of domain");
  }
  if (reading.epsilon <= 0.0) return Status::InvalidArgument("reading carries no budget");
  if (epsilon_[reading.sensor] == 0.0) {
    epsilon_[reading.sensor] = reading.epsilon;
  } else if (std::fabs(epsilon_[reading.sensor] - reading.epsilon) > 1e-9) {
    return Status::InvalidArgument("mixed epsilons for one sensor are not supported");
  }
  counts_[reading.sensor][reading.value] += 1.0;
  ++totals_[reading.sensor];
  return Status::Ok();
}

Result<std::vector<double>> AggregationServer::EstimateFrequencies(size_t sensor) const {
  if (sensor >= schema_.size()) return Status::InvalidArgument("unknown sensor");
  if (totals_[sensor] == 0) return Status::FailedPrecondition("no readings for this sensor");
  dp::RandomizedResponse mechanism(schema_[sensor].domain_size, epsilon_[sensor]);
  std::vector<double> estimate(schema_[sensor].domain_size);
  double n = static_cast<double>(totals_[sensor]);
  for (size_t v = 0; v < estimate.size(); ++v) {
    estimate[v] = std::max(0.0, mechanism.Debias(counts_[sensor][v] / n));
  }
  NormalizeInPlace(estimate);
  return estimate;
}

Result<AggregationServer::RobustEstimate> AggregationServer::EstimateWithLoss(
    size_t sensor, size_t expected, double degraded_threshold) const {
  if (sensor >= schema_.size()) return Status::InvalidArgument("unknown sensor");
  if (!(degraded_threshold >= 0.0 && degraded_threshold <= 1.0)) {
    return Status::InvalidArgument("degraded_threshold must be in [0, 1]");
  }
  if (expected < totals_[sensor]) {
    return Status::InvalidArgument("expected readings below the count actually received");
  }
  RobustEstimate estimate;
  PPDP_ASSIGN_OR_RETURN(estimate.frequencies, EstimateFrequencies(sensor));
  estimate.received = totals_[sensor];
  estimate.expected = expected;
  if (expected > 0) {
    estimate.loss_rate =
        1.0 - static_cast<double>(estimate.received) / static_cast<double>(expected);
  }
  estimate.degraded = estimate.loss_rate > degraded_threshold;
  // Debiasing amplifies sampling noise by 1/(keep − lie); bound each
  // component's 95% interval by the worst-case binomial sd 0.5/√n over the
  // readings that actually arrived. Loss widens the interval through the
  // smaller n — an honest price instead of a silent bias.
  dp::RandomizedResponse mechanism(schema_[sensor].domain_size, epsilon_[sensor]);
  const double lie =
      (1.0 - mechanism.keep_probability()) / (static_cast<double>(schema_[sensor].domain_size) - 1.0);
  const double slope = 1.0 / (mechanism.keep_probability() - lie);
  const double n = static_cast<double>(estimate.received);
  estimate.ci_halfwidth = 1.96 * slope * 0.5 / std::sqrt(n);
  if (estimate.degraded) {
    static obs::Counter& degraded_metric =
        obs::MetricsRegistry::Global().counter("iot.server.degraded_estimates");
    degraded_metric.Increment();
    PPDP_LOG(WARN) << "degraded estimate: transport loss above threshold"
                   << obs::Field("sensor", schema_[sensor].name)
                   << obs::Field("loss", estimate.loss_rate)
                   << obs::Field("threshold", degraded_threshold);
  }
  return estimate;
}

size_t AggregationServer::ReadingCount(size_t sensor) const {
  PPDP_CHECK(sensor < schema_.size());
  return totals_[sensor];
}

double ServiceQuality(const std::vector<double>& estimated, const std::vector<double>& truth) {
  PPDP_CHECK(estimated.size() == truth.size());
  return std::max(0.0, 1.0 - L1Distance(estimated, truth) / 2.0);
}

}  // namespace ppdp::iot
