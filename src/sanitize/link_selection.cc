#include "sanitize/link_selection.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::sanitize {

namespace {

/// Relational estimate for u excluding the link to `excluded`, mirroring
/// classify::RelationalPredict.
classify::LabelDistribution PredictWithout(const graph::SocialGraph& g, graph::NodeId u,
                                           graph::NodeId excluded,
                                           const std::vector<classify::LabelDistribution>& est) {
  const size_t labels = static_cast<size_t>(g.num_labels());
  classify::LabelDistribution combined(labels, 0.0);
  double total = 0.0;
  for (graph::NodeId v : g.Neighbors(u)) {
    if (v == excluded) continue;
    double w = g.LinkWeight(u, v);
    if (w <= 0.0) continue;
    total += w;
    for (size_t y = 0; y < labels; ++y) combined[y] += w * est[v][y];
  }
  if (total <= 0.0) return est[u];
  for (double& p : combined) p /= total;
  return combined;
}

}  // namespace

std::vector<ScoredLink> RankIndistinguishableLinks(
    const graph::SocialGraph& g, const std::vector<bool>& known,
    const std::vector<classify::LabelDistribution>& estimates) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(estimates.size() == g.num_nodes());
  std::vector<ScoredLink> scored;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) continue;  // only hidden-label users need protection
    for (graph::NodeId v : g.Neighbors(u)) {
      ScoredLink link;
      link.u = u;
      link.v = v;
      link.variance = Variance(PredictWithout(g, u, v, estimates));
      scored.push_back(link);
    }
  }
  std::sort(scored.begin(), scored.end(), [](const ScoredLink& a, const ScoredLink& b) {
    if (a.variance != b.variance) return a.variance < b.variance;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  return scored;
}

size_t RemoveIndistinguishableLinks(graph::SocialGraph& g, const std::vector<bool>& known,
                                    const std::vector<classify::LabelDistribution>& estimates,
                                    size_t count) {
  std::vector<ScoredLink> ranked = RankIndistinguishableLinks(g, known, estimates);
  size_t removed = 0;
  for (const ScoredLink& link : ranked) {
    if (removed >= count) break;
    if (g.RemoveEdge(link.u, link.v)) ++removed;
  }
  return removed;
}

}  // namespace ppdp::sanitize
