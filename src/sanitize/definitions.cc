#include "sanitize/definitions.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/centrality.h"
#include "sanitize/attribute_selection.h"
#include "sanitize/collective_sanitizer.h"

namespace ppdp::sanitize {

namespace {

/// Best accuracy over the classifier set against `g` (labels per `known`).
double BestAccuracy(const graph::SocialGraph& g, const std::vector<bool>& known,
                    const ClassifierSet& classifiers) {
  double best = 0.0;
  for (classify::AttackModel attack : classifiers.attacks) {
    for (classify::LocalModel local_model : classifiers.locals) {
      auto local = classify::MakeLocalClassifier(local_model);
      best = std::max(best,
                      classify::RunAttack(g, known, attack, *local, classifiers.config).accuracy);
    }
  }
  return best;
}

}  // namespace

DeltaPrivacyVerdict CheckDeltaPrivacy(const graph::SocialGraph& g,
                                      const std::vector<bool>& known, double delta,
                                      const ClassifierSet& classifiers) {
  PPDP_CHECK(delta >= 0.0) << "Δ must be non-negative";
  DeltaPrivacyVerdict verdict;
  verdict.best_accuracy = BestAccuracy(g, known, classifiers);
  verdict.prior_accuracy = PriorOnlyAccuracy(g, known);
  verdict.gain = std::max(0.0, verdict.best_accuracy - verdict.prior_accuracy);
  verdict.is_private = verdict.gain <= delta + 1e-12;
  return verdict;
}

UtilityVerdict CheckUtility(const graph::SocialGraph& original,
                            const graph::SocialGraph& sanitized,
                            const std::vector<bool>& known, size_t utility_category,
                            double epsilon, double delta, const ClassifierSet& classifiers) {
  PPDP_CHECK(original.num_nodes() == sanitized.num_nodes())
      << "sanitization must not add or remove users";
  PPDP_CHECK(utility_category < sanitized.num_categories());

  UtilityVerdict verdict;
  verdict.structure_disparity = graph::CentralityDisparity(
      graph::DegreeCentrality(original), graph::DegreeCentrality(sanitized));
  verdict.structure_ok = verdict.structure_disparity <= epsilon + 1e-12;

  graph::SocialGraph view = WithDecisionCategory(sanitized, utility_category);
  std::vector<bool> utility_known(known);
  for (graph::NodeId u = 0; u < view.num_nodes(); ++u) {
    if (view.GetLabel(u) == graph::kUnknownLabel) utility_known[u] = false;
  }
  verdict.best_accuracy = BestAccuracy(view, utility_known, classifiers);
  verdict.prior_accuracy = PriorOnlyAccuracy(view, utility_known);
  verdict.gain = std::max(0.0, verdict.best_accuracy - verdict.prior_accuracy);
  verdict.prediction_ok = verdict.gain >= delta - 1e-12;
  verdict.satisfied = verdict.structure_ok && verdict.prediction_ok;
  return verdict;
}

}  // namespace ppdp::sanitize
