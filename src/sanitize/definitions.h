#ifndef PPDP_SANITIZE_DEFINITIONS_H_
#define PPDP_SANITIZE_DEFINITIONS_H_

#include <cstddef>
#include <vector>

#include "classify/evaluation.h"
#include "graph/social_graph.h"

namespace ppdp::sanitize {

/// The chapter-3 formal definitions as executable checkers.
///
/// Definition 3.2.6 ((Δ, C)-privacy): G is (Δ, C)-private when, for the
/// sensitive category, the best classifier in C gains at most Δ prediction
/// accuracy from G over the best prior-only guess:
///     max_c Λ(G, K) − max_c' Λ(K) <= Δ.
/// Definition 3.2.7 ((ε, δ)-utility): the sanitized G' satisfies it when
/// (i) the structural disparity M(G, G') stays within ε and (ii) the best
/// classifier still gains at least δ accuracy on the non-sensitive
/// (utility) category.

/// The classifier set C: every (attack, local classifier) combination to
/// evaluate. Defaults to the nine combinations of Section 3.7.2.
struct ClassifierSet {
  std::vector<classify::AttackModel> attacks = {classify::AttackModel::kAttrOnly,
                                                classify::AttackModel::kLinkOnly,
                                                classify::AttackModel::kCollective};
  std::vector<classify::LocalModel> locals = {classify::LocalModel::kNaiveBayes,
                                              classify::LocalModel::kKnn,
                                              classify::LocalModel::kRst};
  classify::CollectiveConfig config;
};

/// Verdict of the (Δ, C)-privacy check.
struct DeltaPrivacyVerdict {
  double best_accuracy = 0.0;   ///< max_c Λ^{hr}_c(G, K)
  double prior_accuracy = 0.0;  ///< max_c' Λ^{hr}_c'(K): the majority-prior guess
  double gain = 0.0;            ///< best − prior (clamped at 0)
  bool is_private = false;      ///< gain <= Δ
};

/// Evaluates Definition 3.2.6 for the sensitive decision attribute (the
/// node label) under the attacker-visibility mask `known`.
DeltaPrivacyVerdict CheckDeltaPrivacy(const graph::SocialGraph& g,
                                      const std::vector<bool>& known, double delta,
                                      const ClassifierSet& classifiers = {});

/// Verdict of the (ε, δ)-utility check on a sanitized graph.
struct UtilityVerdict {
  double structure_disparity = 0.0;  ///< M(G, G'): mean degree-centrality shift
  double best_accuracy = 0.0;        ///< best classifier on the utility category of G'
  double prior_accuracy = 0.0;       ///< majority-prior guess on the utility category
  double gain = 0.0;                 ///< best − prior (clamped at 0)
  bool structure_ok = false;         ///< condition (i): disparity <= ε
  bool prediction_ok = false;        ///< condition (ii): gain >= δ
  bool satisfied = false;            ///< both
};

/// Evaluates Definition 3.2.7 for `sanitized` against the `original` graph,
/// with the utility category's values as the non-sensitive target. The
/// structural measurer M is the mean absolute degree-centrality difference
/// (a cheap instance of the chapter-4 structure metrics).
UtilityVerdict CheckUtility(const graph::SocialGraph& original,
                            const graph::SocialGraph& sanitized,
                            const std::vector<bool>& known, size_t utility_category,
                            double epsilon, double delta,
                            const ClassifierSet& classifiers = {});

}  // namespace ppdp::sanitize

#endif  // PPDP_SANITIZE_DEFINITIONS_H_
