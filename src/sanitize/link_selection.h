#ifndef PPDP_SANITIZE_LINK_SELECTION_H_
#define PPDP_SANITIZE_LINK_SELECTION_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "graph/social_graph.h"

namespace ppdp::sanitize {

/// An edge scored by how indistinguishable its removal leaves the incident
/// node's predicted label distribution (Definition 3.5.1): lower variance
/// across class probabilities after removing the link means the link is more
/// worth removing.
struct ScoredLink {
  graph::NodeId u = 0;        ///< the protected endpoint
  graph::NodeId v = 0;        ///< the neighbor the link leads to
  double variance = 0.0;      ///< Var{P(y_u^1), ..., P(y_u^k)} without the link
};

/// Scores every (hidden-label node, neighbor) link by the variance of the
/// node's relational prediction with the link removed, given the current
/// per-node label-distribution estimates. Result sorted ascending by
/// variance (most indistinguishable first); each undirected edge may appear
/// once per hidden endpoint.
std::vector<ScoredLink> RankIndistinguishableLinks(
    const graph::SocialGraph& g, const std::vector<bool>& known,
    const std::vector<classify::LabelDistribution>& estimates);

/// Removes up to `count` most-indistinguishable links from `g` (skipping
/// links already gone because both endpoints nominated them). Returns the
/// number actually removed.
size_t RemoveIndistinguishableLinks(graph::SocialGraph& g, const std::vector<bool>& known,
                                    const std::vector<classify::LabelDistribution>& estimates,
                                    size_t count);

}  // namespace ppdp::sanitize

#endif  // PPDP_SANITIZE_LINK_SELECTION_H_
