#ifndef PPDP_SANITIZE_COLLECTIVE_SANITIZER_H_
#define PPDP_SANITIZE_COLLECTIVE_SANITIZER_H_

#include <cstddef>
#include <vector>

#include "classify/evaluation.h"
#include "graph/social_graph.h"
#include "sanitize/attribute_selection.h"

namespace ppdp::sanitize {

/// Options of the collective sanitization method (Algorithm 2).
struct CollectiveSanitizeOptions {
  size_t utility_category = 0;        ///< the designated utility attribute
  int32_t generalization_level = 6;   ///< Algorithm 4's L for Core perturbation
};

/// What the collective sanitizer did to the graph.
struct SanitizeReport {
  DependencyAnalysis analysis;
  std::vector<size_t> removed_categories;    ///< masked outright (PDA − Core)
  std::vector<size_t> perturbed_categories;  ///< generalized in place (Core)
};

/// Algorithm 2: removes PDA−Core categories (no utility contribution) and
/// perturbs the Core categories by numeric generalization at the configured
/// level. Mutates `g`; returns what was done.
SanitizeReport CollectiveSanitize(graph::SocialGraph& g, const CollectiveSanitizeOptions& options);

/// Joint privacy/utility measurement used by Tables 3.7-3.12: privacy is
/// the collective-attack accuracy on the sensitive label; utility is the
/// collective-attack accuracy on the utility category (via
/// WithDecisionCategory). The dissertation's tradeoff criterion is
/// utility/privacy — higher is better for the defender.
struct PrivacyUtility {
  double privacy_accuracy = 0.0;
  double utility_accuracy = 0.0;
  double Ratio() const { return privacy_accuracy > 0.0 ? utility_accuracy / privacy_accuracy : 0.0; }
};

/// Measures both accuracies on `g` with the given local model family and
/// collective config. `known` is the attacker-visible mask over the
/// sensitive labels; on the utility side nodes publishing the utility value
/// act as training data and the accuracy is scored on a held-out fraction
/// determined by the same mask.
PrivacyUtility MeasurePrivacyUtility(const graph::SocialGraph& g, const std::vector<bool>& known,
                                     size_t utility_category, classify::LocalModel local_model,
                                     const classify::CollectiveConfig& config = {});

/// Accuracy of the prior-only attacker (majority known label), the baseline
/// of the (Δ, C)-privacy definition (Definition 3.2.6).
double PriorOnlyAccuracy(const graph::SocialGraph& g, const std::vector<bool>& known);

}  // namespace ppdp::sanitize

#endif  // PPDP_SANITIZE_COLLECTIVE_SANITIZER_H_
