#include "sanitize/collective_sanitizer.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "sanitize/generalization.h"

namespace ppdp::sanitize {

SanitizeReport CollectiveSanitize(graph::SocialGraph& g,
                                  const CollectiveSanitizeOptions& options) {
  SanitizeReport report;
  report.analysis = AnalyzeDependencies(g, options.utility_category);

  if (report.analysis.core.empty()) {
    // No shared attributes: PDAs contribute nothing to utility, remove them.
    for (size_t c : report.analysis.privacy_dependent) {
      g.MaskCategory(c);
      report.removed_categories.push_back(c);
    }
    return report;
  }
  // Shared attributes exist: remove PDA − Core, perturb the Core.
  for (size_t c : report.analysis.pda_minus_core) {
    g.MaskCategory(c);
    report.removed_categories.push_back(c);
  }
  for (size_t c : report.analysis.core) {
    GeneralizeNumericCategory(g, c, options.generalization_level);
    report.perturbed_categories.push_back(c);
  }
  return report;
}

PrivacyUtility MeasurePrivacyUtility(const graph::SocialGraph& g, const std::vector<bool>& known,
                                     size_t utility_category, classify::LocalModel local_model,
                                     const classify::CollectiveConfig& config) {
  PPDP_CHECK(utility_category < g.num_categories());
  PrivacyUtility result;
  {
    auto local = classify::MakeLocalClassifier(local_model);
    result.privacy_accuracy =
        classify::RunAttack(g, known, classify::AttackModel::kCollective, *local, config).accuracy;
  }
  {
    graph::SocialGraph utility_view = WithDecisionCategory(g, utility_category);
    // On the utility side the same mask defines the train/test split; nodes
    // without a published utility value are unusable for either role.
    std::vector<bool> utility_known(known);
    for (graph::NodeId u = 0; u < utility_view.num_nodes(); ++u) {
      if (utility_view.GetLabel(u) == graph::kUnknownLabel) utility_known[u] = false;
    }
    auto local = classify::MakeLocalClassifier(local_model);
    result.utility_accuracy =
        classify::RunAttack(utility_view, utility_known, classify::AttackModel::kCollective,
                            *local, config)
            .accuracy;
  }
  return result;
}

double PriorOnlyAccuracy(const graph::SocialGraph& g, const std::vector<bool>& known) {
  PPDP_CHECK(known.size() == g.num_nodes());
  std::map<graph::Label, size_t> counts;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u] && g.GetLabel(u) != graph::kUnknownLabel) ++counts[g.GetLabel(u)];
  }
  graph::Label majority = 0;
  size_t best = 0;
  for (const auto& [label, count] : counts) {
    if (count > best) {
      best = count;
      majority = label;
    }
  }
  size_t correct = 0;
  size_t total = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u] || g.GetLabel(u) == graph::kUnknownLabel) continue;
    ++total;
    if (g.GetLabel(u) == majority) ++correct;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
}

}  // namespace ppdp::sanitize
