#ifndef PPDP_SANITIZE_ATTRIBUTE_SELECTION_H_
#define PPDP_SANITIZE_ATTRIBUTE_SELECTION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/social_graph.h"

namespace ppdp::sanitize {

/// Output of the double dependency analysis of Sections 3.5.1/3.6.1 over a
/// graph with a sensitive decision attribute (the node label) and one
/// designated utility attribute category. All vectors hold graph category
/// indices; the utility category itself is never a condition attribute.
struct DependencyAnalysis {
  std::vector<size_t> privacy_dependent;  ///< PDAs: most label-dependent categories
  std::vector<size_t> utility_dependent;  ///< UDAs: most utility-dependent categories
  std::vector<size_t> core;               ///< PDAs ∩ UDAs (Definition 3.6.1)
  std::vector<size_t> pda_minus_core;     ///< PDAs \ core — safe to remove outright
};

/// Runs the dependency analysis. Condition attributes are all categories
/// except `utility_category`; the PDA side ranks by (majority-consistency)
/// dependency on the node label, the UDA side on the utility category's
/// values (nodes missing a value there are skipped for that side). A
/// category counts as dependent when its lift over the decision prior
/// reaches a fraction of the best category's lift — the paper's "n_t-most
/// dependent attributes" made data-driven.
DependencyAnalysis AnalyzeDependencies(const graph::SocialGraph& g, size_t utility_category);

/// Greedy reduct of the condition categories w.r.t. the node label (the
/// strict RST notion used by Table 3.4), mapped to graph category indices.
std::vector<size_t> LabelReduct(const graph::SocialGraph& g, size_t utility_category);

/// Ranks condition categories (everything but `utility_category`) by
/// dependency degree γ({c}, label) descending — the "most privacy-dependent
/// attributes" order used by the attribute-removal sweeps of Figs 3.2-3.4.
std::vector<std::pair<size_t, double>> RankPrivacyDependence(const graph::SocialGraph& g,
                                                             size_t utility_category);

/// Builds a derived graph whose node label is the value of `category`
/// (nodes with a missing value get kUnknownLabel) and whose attribute set is
/// every other category. Used to measure utility-side prediction accuracy
/// with the same attack machinery.
graph::SocialGraph WithDecisionCategory(const graph::SocialGraph& g, size_t category);

}  // namespace ppdp::sanitize

#endif  // PPDP_SANITIZE_ATTRIBUTE_SELECTION_H_
