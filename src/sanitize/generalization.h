#ifndef PPDP_SANITIZE_GENERALIZATION_H_
#define PPDP_SANITIZE_GENERALIZATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "graph/social_graph.h"

namespace ppdp::sanitize {

/// A Generic Attribute Hierarchy (Definition 3.6.2): a rooted tree whose
/// leaves are concrete attribute values and whose internal levels are
/// progressively coarser generalizations ("Star Wars" → "Fantasy" →
/// "American film"). Used by the semantic perturbation path; the numeric
/// datasets use GeneralizeNumericCategory instead (Algorithm 4).
class GenericAttributeHierarchy {
 public:
  /// Creates a hierarchy with a single root concept (level 0).
  explicit GenericAttributeHierarchy(std::string root);

  /// Adds `child` under `parent`; the parent must already exist. Returns an
  /// error (kNotFound) otherwise, or kInvalidArgument on duplicates.
  Status AddConcept(const std::string& parent, const std::string& child);

  /// Generalizes `value` up `levels` ancestors (clamped at the root).
  /// kNotFound when the value is not in the hierarchy.
  Result<std::string> Generalize(const std::string& value, int levels) const;

  /// Depth of a concept (root = 0); kNotFound when absent.
  Result<int> Depth(const std::string& value) const;

  size_t size() const { return parent_.size(); }

 private:
  std::string root_;
  std::map<std::string, std::string> parent_;  ///< concept -> parent (root maps to itself)
};

/// Algorithm 4: numeric generalization at level L. Maps each published
/// value v of `category` to floor((v - MIN) / Range) with
/// Range = floor((MAX - MIN) / L) + 1; MIN/MAX are taken over published
/// values. Larger L means finer bins (less perturbation), matching the
/// dissertation's observation that perturbing degree decreases as L grows.
/// Missing values stay missing. No-op on categories nobody publishes.
void GeneralizeNumericCategory(graph::SocialGraph& g, size_t category, int32_t level);

}  // namespace ppdp::sanitize

#endif  // PPDP_SANITIZE_GENERALIZATION_H_
