#include "sanitize/generalization.h"

#include <algorithm>

#include "common/logging.h"
#include "common/result.h"

namespace ppdp::sanitize {

GenericAttributeHierarchy::GenericAttributeHierarchy(std::string root) : root_(std::move(root)) {
  parent_[root_] = root_;
}

Status GenericAttributeHierarchy::AddConcept(const std::string& parent,
                                             const std::string& child) {
  if (parent_.find(parent) == parent_.end()) {
    return Status::NotFound("parent concept '" + parent + "' not in hierarchy");
  }
  if (parent_.find(child) != parent_.end()) {
    return Status::InvalidArgument("concept '" + child + "' already in hierarchy");
  }
  parent_[child] = parent;
  return Status::Ok();
}

Result<std::string> GenericAttributeHierarchy::Generalize(const std::string& value,
                                                          int levels) const {
  auto it = parent_.find(value);
  if (it == parent_.end()) return Status::NotFound("concept '" + value + "' not in hierarchy");
  std::string current = value;
  for (int i = 0; i < levels; ++i) {
    const std::string& parent = parent_.at(current);
    if (parent == current) break;  // reached the root
    current = parent;
  }
  return current;
}

Result<int> GenericAttributeHierarchy::Depth(const std::string& value) const {
  auto it = parent_.find(value);
  if (it == parent_.end()) return Status::NotFound("concept '" + value + "' not in hierarchy");
  int depth = 0;
  std::string current = value;
  while (parent_.at(current) != current) {
    current = parent_.at(current);
    ++depth;
    PPDP_CHECK(depth <= static_cast<int>(parent_.size())) << "cycle in hierarchy";
  }
  return depth;
}

void GeneralizeNumericCategory(graph::SocialGraph& g, size_t category, int32_t level) {
  PPDP_CHECK(category < g.num_categories());
  PPDP_CHECK(level >= 1) << "generalization level must be positive";

  graph::AttributeValue min_value = 0;
  graph::AttributeValue max_value = 0;
  bool seen = false;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::AttributeValue v = g.Attribute(u, category);
    if (v == graph::kMissingAttribute) continue;
    if (!seen) {
      min_value = max_value = v;
      seen = true;
    } else {
      min_value = std::min(min_value, v);
      max_value = std::max(max_value, v);
    }
  }
  if (!seen) return;

  graph::AttributeValue range = (max_value - min_value) / level + 1;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::AttributeValue v = g.Attribute(u, category);
    if (v == graph::kMissingAttribute) continue;
    g.SetAttribute(u, category, (v - min_value) / range);
  }
}

}  // namespace ppdp::sanitize
