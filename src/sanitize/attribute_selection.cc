#include "sanitize/attribute_selection.h"

#include <algorithm>

#include "common/logging.h"
#include "rst/indiscernibility.h"
#include "rst/information_system.h"
#include "rst/reduct.h"

namespace ppdp::sanitize {

namespace {

using graph::SocialGraph;

/// Condition categories: all except the utility category.
std::vector<size_t> ConditionCategories(const SocialGraph& g, size_t utility_category) {
  std::vector<size_t> conditions;
  conditions.reserve(g.num_categories() - 1);
  for (size_t c = 0; c < g.num_categories(); ++c) {
    if (c != utility_category) conditions.push_back(c);
  }
  return conditions;
}

/// Information system with the node label as decision over `conditions`.
rst::InformationSystem LabelSystem(const SocialGraph& g, const std::vector<size_t>& conditions) {
  std::vector<std::string> names;
  names.reserve(conditions.size());
  for (size_t c : conditions) names.push_back(g.categories()[c].name);
  rst::InformationSystem is(std::move(names), g.num_labels());
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::Label y = g.GetLabel(u);
    if (y == graph::kUnknownLabel) continue;
    std::vector<graph::AttributeValue> row(conditions.size());
    for (size_t k = 0; k < conditions.size(); ++k) row[k] = g.Attribute(u, conditions[k]);
    is.AddObject(std::move(row), y);
  }
  return is;
}

/// Information system with the utility category's value as decision.
rst::InformationSystem UtilitySystem(const SocialGraph& g, size_t utility_category,
                                     const std::vector<size_t>& conditions) {
  std::vector<std::string> names;
  names.reserve(conditions.size());
  for (size_t c : conditions) names.push_back(g.categories()[c].name);
  rst::InformationSystem is(std::move(names), g.categories()[utility_category].num_values);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::AttributeValue decision = g.Attribute(u, utility_category);
    if (decision == graph::kMissingAttribute) continue;
    std::vector<graph::AttributeValue> row(conditions.size());
    for (size_t k = 0; k < conditions.size(); ++k) row[k] = g.Attribute(u, conditions[k]);
    is.AddObject(std::move(row), decision);
  }
  return is;
}

/// Maps information-system category positions back to graph category ids.
std::vector<size_t> MapBack(const std::vector<size_t>& positions,
                            const std::vector<size_t>& conditions) {
  std::vector<size_t> mapped;
  mapped.reserve(positions.size());
  for (size_t p : positions) mapped.push_back(conditions[p]);
  std::sort(mapped.begin(), mapped.end());
  return mapped;
}

}  // namespace

namespace {

/// Picks the dependent categories from a single-category dependency ranking:
/// everything whose lift over the decision prior exceeds `fraction` of the
/// best category's lift (and a small absolute floor). This realizes the
/// paper's "n_t-most dependent attributes" selection without a hand-tuned n
/// per dataset.
std::vector<size_t> SelectDependent(const rst::InformationSystem& is,
                                    const std::vector<size_t>& conditions,
                                    double fraction = 0.35) {
  std::vector<std::pair<size_t, double>> ranked = rst::SingleCategoryDependencies(is);
  double max_gain = 0.0;
  for (const auto& [unused_c, gain] : ranked) max_gain = std::max(max_gain, gain);
  std::vector<size_t> selected;
  for (const auto& [c, gain] : ranked) {
    if (gain >= fraction * max_gain && gain > 0.005) selected.push_back(c);
  }
  return MapBack(selected, conditions);
}

}  // namespace

DependencyAnalysis AnalyzeDependencies(const SocialGraph& g, size_t utility_category) {
  PPDP_CHECK(utility_category < g.num_categories());
  PPDP_CHECK(g.num_categories() >= 2) << "need at least one condition category";
  std::vector<size_t> conditions = ConditionCategories(g, utility_category);

  DependencyAnalysis result;
  result.privacy_dependent = SelectDependent(LabelSystem(g, conditions), conditions);
  result.utility_dependent =
      SelectDependent(UtilitySystem(g, utility_category, conditions), conditions);

  std::set_intersection(result.privacy_dependent.begin(), result.privacy_dependent.end(),
                        result.utility_dependent.begin(), result.utility_dependent.end(),
                        std::back_inserter(result.core));
  std::set_difference(result.privacy_dependent.begin(), result.privacy_dependent.end(),
                      result.core.begin(), result.core.end(),
                      std::back_inserter(result.pda_minus_core));
  return result;
}

std::vector<size_t> LabelReduct(const SocialGraph& g, size_t utility_category) {
  PPDP_CHECK(utility_category < g.num_categories());
  std::vector<size_t> conditions = ConditionCategories(g, utility_category);
  return MapBack(rst::GreedyReduct(LabelSystem(g, conditions)), conditions);
}

std::vector<std::pair<size_t, double>> RankPrivacyDependence(const SocialGraph& g,
                                                             size_t utility_category) {
  PPDP_CHECK(utility_category < g.num_categories());
  std::vector<size_t> conditions = ConditionCategories(g, utility_category);
  rst::InformationSystem is = LabelSystem(g, conditions);
  std::vector<std::pair<size_t, double>> ranked = rst::SingleCategoryDependencies(is);
  for (auto& [category, unused_gamma] : ranked) category = conditions[category];
  return ranked;
}

SocialGraph WithDecisionCategory(const SocialGraph& g, size_t category) {
  PPDP_CHECK(category < g.num_categories());
  std::vector<graph::AttributeCategory> remaining;
  remaining.reserve(g.num_categories() - 1);
  for (size_t c = 0; c < g.num_categories(); ++c) {
    if (c != category) remaining.push_back(g.categories()[c]);
  }
  SocialGraph derived(std::move(remaining), g.categories()[category].num_values);
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<graph::AttributeValue> attrs;
    attrs.reserve(g.num_categories() - 1);
    for (size_t c = 0; c < g.num_categories(); ++c) {
      if (c != category) attrs.push_back(g.Attribute(u, c));
    }
    graph::AttributeValue decision = g.Attribute(u, category);
    derived.AddNode(std::move(attrs),
                    decision == graph::kMissingAttribute ? graph::kUnknownLabel : decision);
  }
  for (const auto& [u, v] : g.Edges()) derived.AddEdge(u, v);
  return derived;
}

}  // namespace ppdp::sanitize
