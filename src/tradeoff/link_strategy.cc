#include "tradeoff/link_strategy.h"

#include <algorithm>

#include "common/logging.h"
#include "tradeoff/utility_loss.h"

namespace ppdp::tradeoff {

namespace {

/// Confidence the relational estimate assigns to u's true label when the
/// link to `excluded` is dropped (graph::kUnknownLabel excluded earlier).
double TruthConfidenceWithout(const graph::SocialGraph& g, graph::NodeId u, graph::NodeId excluded,
                              const std::vector<classify::LabelDistribution>& estimates,
                              graph::Label truth) {
  double total = 0.0;
  double truth_mass = 0.0;
  for (graph::NodeId v : g.Neighbors(u)) {
    if (v == excluded) continue;
    double w = g.LinkWeight(u, v);
    if (w <= 0.0) continue;
    total += w;
    truth_mass += w * estimates[v][static_cast<size_t>(truth)];
  }
  if (total <= 0.0) return estimates[u][static_cast<size_t>(truth)];
  return truth_mass / total;
}

struct Candidate {
  graph::NodeId u = 0;
  graph::NodeId v = 0;
  double gain = 0.0;  ///< privacy gained by removing the link
  double cost = 0.0;  ///< structure utility lost
};

}  // namespace

LinkStrategyResult RemoveVulnerableLinks(graph::SocialGraph& g, const std::vector<bool>& known,
                                         const std::vector<classify::LabelDistribution>& estimates,
                                         double epsilon_budget, size_t max_links) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(estimates.size() == g.num_nodes());

  std::vector<Candidate> candidates;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) continue;
    graph::Label truth = g.GetLabel(u);
    if (truth == graph::kUnknownLabel) continue;
    double with_all = TruthConfidenceWithout(g, u, /*excluded=*/u, estimates, truth);
    for (graph::NodeId v : g.Neighbors(u)) {
      Candidate c;
      c.u = u;
      c.v = v;
      // Vulnerable link (Definition 4.3.1): removal lowers the attacker's
      // confidence in the truth; the gain is that drop.
      c.gain = with_all - TruthConfidenceWithout(g, u, v, estimates, truth);
      c.cost = StructureUtilityValue(g, u, v);
      if (c.gain > 0.0) candidates.push_back(c);
    }
  }

  // Modular objective: cost-benefit greedy is the natural knapsack order.
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    double ra = a.gain / std::max(a.cost, 0.5);
    double rb = b.gain / std::max(b.cost, 0.5);
    if (ra != rb) return ra > rb;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  LinkStrategyResult result;
  for (const Candidate& c : candidates) {
    if (result.removed.size() >= max_links) break;
    if (result.structure_loss + c.cost > epsilon_budget + 1e-9) continue;
    if (!g.RemoveEdge(c.u, c.v)) continue;  // already removed via the twin direction
    result.removed.emplace_back(c.u, c.v);
    result.structure_loss += c.cost;
  }
  return result;
}

LinkStrategyResult RemoveRandomLinks(graph::SocialGraph& g, double epsilon_budget, size_t count,
                                     Rng& rng) {
  auto edges = g.Edges();
  rng.Shuffle(edges);
  LinkStrategyResult result;
  for (const auto& [u, v] : edges) {
    if (result.removed.size() >= count) break;
    double cost = StructureUtilityValue(g, u, v);
    if (result.structure_loss + cost > epsilon_budget + 1e-9) continue;
    PPDP_CHECK(g.RemoveEdge(u, v));
    result.removed.emplace_back(u, v);
    result.structure_loss += cost;
  }
  return result;
}

}  // namespace ppdp::tradeoff
