#ifndef PPDP_TRADEOFF_PROFILE_H_
#define PPDP_TRADEOFF_PROFILE_H_

#include <cstddef>
#include <vector>

#include "graph/social_graph.h"

namespace ppdp::tradeoff {

/// A user profile (Definition 4.2.7): a prior ψ over a finite set of
/// candidate attribute sets X_1..X_k. The chapter-4 machinery — the
/// adversary's posterior, the attribute-sanitization strategy f(X'|X), the
/// prediction-utility loss — all operate over this candidate space.
struct Profile {
  /// Candidate attribute vectors (one value per graph category).
  std::vector<std::vector<graph::AttributeValue>> attribute_sets;
  /// ψ(X_i); non-negative, sums to 1.
  std::vector<double> prior;

  size_t size() const { return attribute_sets.size(); }
};

/// Builds a profile from a graph by taking the `max_sets` most frequent
/// published attribute vectors (prior = empirical frequency, renormalized).
/// Vectors beyond the cutoff are folded into their nearest retained vector
/// by Hamming distance, so the prior reflects the whole population.
Profile BuildProfileFromGraph(const graph::SocialGraph& g, size_t max_sets = 6);

/// Attribute-set disparity matrix d_u(X_i, X_j) (Definition 4.4.3):
/// normalized Hamming distance between candidate vectors in [0, 1]. One of
/// the pluggable measurers the chapter names (Hamming / Euclidean / ...).
std::vector<std::vector<double>> HammingDisparity(const Profile& profile);

/// The adversary's latent-attribute guess Z_X per candidate set: the
/// majority ground-truth label among graph nodes whose published vector is
/// nearest to the candidate (the prediction method of Section 4.3.1 reduced
/// to the candidate space).
std::vector<graph::Label> LatentGuessPerSet(const graph::SocialGraph& g, const Profile& profile);

/// Hamming distance helper between attribute vectors of equal length.
size_t HammingDistance(const std::vector<graph::AttributeValue>& a,
                       const std::vector<graph::AttributeValue>& b);

}  // namespace ppdp::tradeoff

#endif  // PPDP_TRADEOFF_PROFILE_H_
