#ifndef PPDP_TRADEOFF_LINK_STRATEGY_H_
#define PPDP_TRADEOFF_LINK_STRATEGY_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "classify/classifier.h"
#include "common/rng.h"
#include "graph/social_graph.h"

namespace ppdp::tradeoff {

/// Result of a link-sanitization pass.
struct LinkStrategyResult {
  std::vector<std::pair<graph::NodeId, graph::NodeId>> removed;
  double structure_loss = 0.0;  ///< ζ over the removed links (pre-removal values)
};

/// Greedy vulnerable-link selection (Section 4.3.2 + Theorems 4.5.1/4.5.2):
/// candidate links are edges incident to hidden-label nodes; each link's
/// privacy gain is the drop in the owner's confidence-in-truth when the link
/// is dropped from the relational estimate (a vulnerable link per
/// Definition 4.3.1); its cost is the structure utility value S (shared
/// friends). Links are picked by the knapsack greedy until the ε budget or
/// `max_links` is exhausted, then removed from `g`.
///
/// `estimates` are the current per-node label-distribution estimates the
/// attacker would hold (e.g. from classify::BootstrapDistributions).
LinkStrategyResult RemoveVulnerableLinks(graph::SocialGraph& g, const std::vector<bool>& known,
                                         const std::vector<classify::LabelDistribution>& estimates,
                                         double epsilon_budget, size_t max_links);

/// Baseline of Fig 4.1(b): removes `count` uniformly random links subject to
/// the same ε structure budget.
LinkStrategyResult RemoveRandomLinks(graph::SocialGraph& g, double epsilon_budget, size_t count,
                                     Rng& rng);

}  // namespace ppdp::tradeoff

#endif  // PPDP_TRADEOFF_LINK_STRATEGY_H_
