#include "tradeoff/attribute_strategy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"
#include "opt/simplex.h"

namespace ppdp::tradeoff {

namespace {

void CheckProblem(const StrategyProblem& p) {
  const size_t n = p.profile.size();
  PPDP_CHECK(n >= 1) << "empty profile";
  PPDP_CHECK(p.utility_disparity.size() == n);
  for (const auto& row : p.utility_disparity) PPDP_CHECK(row.size() == n);
  PPDP_CHECK(p.latent_guess.size() == n);
  PPDP_CHECK(p.num_labels >= 2);
  PPDP_CHECK(p.delta >= 0.0);
}

/// 0/1 privacy disparity between the latent guess of set i and label z.
double Dp(const StrategyProblem& p, size_t i, graph::Label z) {
  return p.latent_guess[i] == z ? 0.0 : 1.0;
}

}  // namespace

const char* AdversaryKnowledgeName(AdversaryKnowledge knowledge) {
  switch (knowledge) {
    case AdversaryKnowledge::kProfileAndStrategy:
      return "Collective";
    case AdversaryKnowledge::kProfileOnly:
      return "ProfileOnly";
    case AdversaryKnowledge::kStrategyOnly:
      return "StrategyOnly";
    case AdversaryKnowledge::kUnknownBoth:
      return "UnknownBoth";
  }
  return "?";
}

Result<StrategyResult> SolveOptimalStrategy(const StrategyProblem& problem) {
  CheckProblem(problem);
  const size_t n = problem.profile.size();
  const size_t num_f = n * n;
  const size_t num_vars = num_f + n;  // f(i->j) then P_j
  auto f_index = [n](size_t i, size_t j) { return i * n + j; };
  auto p_index = [num_f](size_t j) { return num_f + j; };

  std::vector<double> objective(num_vars, 0.0);
  for (size_t j = 0; j < n; ++j) objective[p_index(j)] = 1.0;
  opt::SimplexSolver lp(objective);

  // P_j <= Σ_i ψ_i f(i->j) d_p(Z_i, ẑ)  for every output j and guess ẑ.
  for (size_t j = 0; j < n; ++j) {
    for (graph::Label z = 0; z < problem.num_labels; ++z) {
      std::vector<double> row(num_vars, 0.0);
      row[p_index(j)] = 1.0;
      for (size_t i = 0; i < n; ++i) {
        row[f_index(i, j)] = -problem.profile.prior[i] * Dp(problem, i, z);
      }
      lp.AddLessEqual(std::move(row), 0.0);
    }
  }
  // Prediction-utility loss bound.
  {
    std::vector<double> row(num_vars, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        row[f_index(i, j)] = problem.profile.prior[i] * problem.utility_disparity[i][j];
      }
    }
    lp.AddLessEqual(std::move(row), problem.delta);
  }
  // Rows of f sum to one.
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(num_vars, 0.0);
    for (size_t j = 0; j < n; ++j) row[f_index(i, j)] = 1.0;
    lp.AddEqual(std::move(row), 1.0);
  }

  PPDP_ASSIGN_OR_RETURN(opt::LpSolution solution, lp.Solve());

  StrategyResult result;
  result.strategy.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) result.strategy[i][j] = solution.x[f_index(i, j)];
  }
  result.latent_privacy = solution.objective;
  result.prediction_utility_loss = PredictionLossOfStrategy(problem, result.strategy);
  return result;
}

double PredictionLossOfStrategy(const StrategyProblem& problem,
                                const std::vector<std::vector<double>>& f) {
  CheckProblem(problem);
  const size_t n = problem.profile.size();
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      loss += problem.profile.prior[i] * f[i][j] * problem.utility_disparity[i][j];
    }
  }
  return loss;
}

double EvaluatePrivacyUnderAdversary(const StrategyProblem& problem,
                                     const std::vector<std::vector<double>>& f,
                                     AdversaryKnowledge knowledge) {
  CheckProblem(problem);
  const size_t n = problem.profile.size();
  const auto& psi = problem.profile.prior;

  // Per published set j, the adversary commits to a guess; privacy is the
  // expected 0/1 error under the true (ψ, f) joint.
  auto error_with_guesses = [&](const std::vector<graph::Label>& guess_for_output) {
    double error = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        error += psi[i] * f[i][j] * Dp(problem, i, guess_for_output[j]);
      }
    }
    return error;
  };

  std::vector<graph::Label> guesses(n, 0);
  switch (knowledge) {
    case AdversaryKnowledge::kProfileAndStrategy: {
      // Bayes-optimal per output: maximize the posterior mass agreeing with
      // the guess under the true prior and strategy.
      for (size_t j = 0; j < n; ++j) {
        std::vector<double> agreement(static_cast<size_t>(problem.num_labels), 0.0);
        for (size_t i = 0; i < n; ++i) {
          agreement[static_cast<size_t>(problem.latent_guess[i])] += psi[i] * f[i][j];
        }
        guesses[j] = static_cast<graph::Label>(ArgMax(agreement));
      }
      break;
    }
    case AdversaryKnowledge::kProfileOnly: {
      // No strategy knowledge: the best constant guess under the prior.
      std::vector<double> agreement(static_cast<size_t>(problem.num_labels), 0.0);
      for (size_t i = 0; i < n; ++i) {
        agreement[static_cast<size_t>(problem.latent_guess[i])] += psi[i];
      }
      graph::Label constant = static_cast<graph::Label>(ArgMax(agreement));
      std::fill(guesses.begin(), guesses.end(), constant);
      break;
    }
    case AdversaryKnowledge::kStrategyOnly: {
      // Knows f, assumes a uniform prior.
      for (size_t j = 0; j < n; ++j) {
        std::vector<double> agreement(static_cast<size_t>(problem.num_labels), 0.0);
        for (size_t i = 0; i < n; ++i) {
          agreement[static_cast<size_t>(problem.latent_guess[i])] += f[i][j];
        }
        guesses[j] = static_cast<graph::Label>(ArgMax(agreement));
      }
      break;
    }
    case AdversaryKnowledge::kUnknownBoth: {
      // Takes the published set at face value.
      for (size_t j = 0; j < n; ++j) guesses[j] = problem.latent_guess[j];
      break;
    }
  }
  return error_with_guesses(guesses);
}

StrategyResult SolveDiscretizedStrategy(const StrategyProblem& problem, size_t granularity,
                                        size_t samples, Rng& rng) {
  CheckProblem(problem);
  PPDP_CHECK(granularity >= 1);
  const size_t n = problem.profile.size();

  // Start from the identity strategy (zero utility loss, always feasible).
  StrategyResult best;
  best.strategy.assign(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) best.strategy[i][i] = 1.0;
  best.latent_privacy = EvaluatePrivacyUnderAdversary(problem, best.strategy,
                                                      AdversaryKnowledge::kProfileAndStrategy);
  best.prediction_utility_loss = PredictionLossOfStrategy(problem, best.strategy);

  for (size_t s = 0; s < samples; ++s) {
    std::vector<std::vector<double>> f(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i) {
      // Multinomial over the grid: d unit chunks dropped into n cells.
      for (size_t unit = 0; unit < granularity; ++unit) {
        f[i][rng.Uniform(n)] += 1.0 / static_cast<double>(granularity);
      }
    }
    if (PredictionLossOfStrategy(problem, f) > problem.delta + 1e-12) continue;
    double privacy = EvaluatePrivacyUnderAdversary(problem, f,
                                                   AdversaryKnowledge::kProfileAndStrategy);
    if (privacy > best.latent_privacy) {
      best.strategy = std::move(f);
      best.latent_privacy = privacy;
      best.prediction_utility_loss = PredictionLossOfStrategy(problem, best.strategy);
    }
  }
  return best;
}

}  // namespace ppdp::tradeoff
