#ifndef PPDP_TRADEOFF_UTILITY_LOSS_H_
#define PPDP_TRADEOFF_UTILITY_LOSS_H_

#include <utility>
#include <vector>

#include "classify/classifier.h"
#include "graph/social_graph.h"

namespace ppdp::tradeoff {

/// Structure utility value S_j of keeping the link (u, v): the number of
/// friends u and v share (Definition 4.4.2's instantiation — unfriending a
/// heavily-embedded friend hurts the clustering coefficient most).
double StructureUtilityValue(const graph::SocialGraph& g, graph::NodeId u, graph::NodeId v);

/// ε-structure utility loss of removing `links` from `g`: the additive sum
/// ζ(S_A) = Σ S_j over the removed links, measured on the graph *before*
/// removal.
double StructureUtilityLoss(const graph::SocialGraph& g,
                            const std::vector<std::pair<graph::NodeId, graph::NodeId>>& links);

/// Latent-data privacy of a published graph: the expected 0/1 estimation
/// error of the collective attacker over the hidden-label nodes,
///   mean_u (1 - P_attack(true label of u)).
/// Higher is better for the user. This is the graph-level counterpart of
/// the candidate-space metric in attribute_strategy.h.
double LatentPrivacyOfGraph(const graph::SocialGraph& g, const std::vector<bool>& known,
                            const std::vector<classify::LabelDistribution>& attack_distributions);

}  // namespace ppdp::tradeoff

#endif  // PPDP_TRADEOFF_UTILITY_LOSS_H_
