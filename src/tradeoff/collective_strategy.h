#ifndef PPDP_TRADEOFF_COLLECTIVE_STRATEGY_H_
#define PPDP_TRADEOFF_COLLECTIVE_STRATEGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "classify/evaluation.h"
#include "graph/social_graph.h"

namespace ppdp::tradeoff {

/// The data-sanitization strategies compared in Section 4.6 (Fig 4.1).
enum class Strategy {
  kAttributeRemoval,        ///< mask the most indicative attributes for the SLA
  kAttributePerturbing,     ///< generalize them instead
  kLinkRemoval,             ///< remove vulnerable links greedily
  kRandomLinkRemoval,       ///< remove random links (baseline)
  kCollectiveSanitization,  ///< the dissertation's combined method
};

const char* StrategyName(Strategy strategy);

/// Knobs of one tradeoff experiment.
struct TradeoffConfig {
  size_t num_attributes = 0;        ///< attributes to sanitize (removal/perturb/collective)
  size_t num_links = 0;             ///< links to sanitize (link strategies/collective)
  double epsilon = 180.0;           ///< ε: structure-utility loss budget
  double delta = 0.4;               ///< δ: prediction-utility loss threshold
  size_t utility_category = 1;      ///< NSLA stand-in category
  int32_t perturb_level = 3;        ///< generalization level for perturbing
  classify::LocalModel local_model = classify::LocalModel::kNaiveBayes;
  classify::CollectiveConfig attack;
  uint64_t seed = 1;
};

/// Measured outcome of applying a strategy.
struct TradeoffOutcome {
  double latent_privacy = 0.0;     ///< adversary 0/1 error on the SLA (higher = safer)
  double structure_loss = 0.0;     ///< achieved ζ over removed links
  double prediction_loss = 0.0;    ///< NSLA accuracy drop vs. the unsanitized graph
  size_t attributes_sanitized = 0;
  size_t links_removed = 0;
};

/// Applies `strategy` to a copy of `original` (the attacker sees labels per
/// `known`), runs the collective attack on the sanitized graph and measures
/// latent privacy plus both utility losses against the original.
TradeoffOutcome ApplyStrategy(const graph::SocialGraph& original, const std::vector<bool>& known,
                              Strategy strategy, const TradeoffConfig& config);

/// NSLA prediction accuracy of the collective attacker on the utility
/// category of `g` (helper shared with the benches).
double UtilityAccuracy(const graph::SocialGraph& g, const std::vector<bool>& known,
                       const TradeoffConfig& config);

}  // namespace ppdp::tradeoff

#endif  // PPDP_TRADEOFF_COLLECTIVE_STRATEGY_H_
