#include "tradeoff/collective_strategy.h"

#include <algorithm>

#include "classify/naive_bayes.h"
#include "classify/relational.h"
#include "common/logging.h"
#include "common/rng.h"
#include "sanitize/attribute_selection.h"
#include "sanitize/generalization.h"
#include "tradeoff/link_strategy.h"
#include "tradeoff/utility_loss.h"

namespace ppdp::tradeoff {

namespace {

using graph::SocialGraph;

/// Current attacker estimates used to score vulnerable links.
std::vector<classify::LabelDistribution> AttackerEstimates(const SocialGraph& g,
                                                           const std::vector<bool>& known) {
  classify::NaiveBayesClassifier nb;
  nb.Train(g, known);
  return classify::BootstrapDistributions(g, known, nb);
}

/// Sanitizes up to `count` attribute categories. In removal mode the top
/// privacy-dependent categories are masked; in perturb mode they are
/// generalized. Returns how many were touched.
size_t SanitizeAttributes(SocialGraph& g, size_t utility_category, size_t count, bool perturb,
                          int32_t level) {
  auto ranked = sanitize::RankPrivacyDependence(g, utility_category);
  size_t done = 0;
  for (const auto& [category, unused_gamma] : ranked) {
    if (done >= count) break;
    if (perturb) {
      sanitize::GeneralizeNumericCategory(g, category, level);
    } else {
      g.MaskCategory(category);
    }
    ++done;
  }
  return done;
}

/// Collective attribute pass: removes PDA−Core first, then perturbs Core,
/// for a total of `count` categories (Algorithm 2 restricted to a budget).
size_t CollectiveAttributes(SocialGraph& g, size_t utility_category, size_t count, int32_t level) {
  sanitize::DependencyAnalysis analysis = sanitize::AnalyzeDependencies(g, utility_category);
  size_t done = 0;
  for (size_t c : analysis.pda_minus_core) {
    if (done >= count) return done;
    g.MaskCategory(c);
    ++done;
  }
  for (size_t c : analysis.core) {
    if (done >= count) return done;
    sanitize::GeneralizeNumericCategory(g, c, level);
    ++done;
  }
  return done;
}

}  // namespace

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kAttributeRemoval:
      return "AttributeRemoval";
    case Strategy::kAttributePerturbing:
      return "AttributePerturbing";
    case Strategy::kLinkRemoval:
      return "LinkRemoval";
    case Strategy::kRandomLinkRemoval:
      return "RandomLinkRemoval";
    case Strategy::kCollectiveSanitization:
      return "CollectiveSanitization";
  }
  return "?";
}

double UtilityAccuracy(const SocialGraph& g, const std::vector<bool>& known,
                       const TradeoffConfig& config) {
  SocialGraph view = sanitize::WithDecisionCategory(g, config.utility_category);
  std::vector<bool> utility_known(known);
  for (graph::NodeId u = 0; u < view.num_nodes(); ++u) {
    if (view.GetLabel(u) == graph::kUnknownLabel) utility_known[u] = false;
  }
  auto local = classify::MakeLocalClassifier(config.local_model);
  return classify::RunAttack(view, utility_known, classify::AttackModel::kCollective, *local,
                             config.attack)
      .accuracy;
}

TradeoffOutcome ApplyStrategy(const SocialGraph& original, const std::vector<bool>& known,
                              Strategy strategy, const TradeoffConfig& config) {
  PPDP_CHECK(config.utility_category < original.num_categories());
  TradeoffOutcome outcome;
  SocialGraph g = original;
  Rng rng(config.seed);

  switch (strategy) {
    case Strategy::kAttributeRemoval:
      outcome.attributes_sanitized =
          SanitizeAttributes(g, config.utility_category, config.num_attributes,
                             /*perturb=*/false, config.perturb_level);
      break;
    case Strategy::kAttributePerturbing:
      outcome.attributes_sanitized =
          SanitizeAttributes(g, config.utility_category, config.num_attributes,
                             /*perturb=*/true, config.perturb_level);
      break;
    case Strategy::kLinkRemoval: {
      auto estimates = AttackerEstimates(g, known);
      LinkStrategyResult links =
          RemoveVulnerableLinks(g, known, estimates, config.epsilon, config.num_links);
      outcome.links_removed = links.removed.size();
      outcome.structure_loss = links.structure_loss;
      break;
    }
    case Strategy::kRandomLinkRemoval: {
      LinkStrategyResult links = RemoveRandomLinks(g, config.epsilon, config.num_links, rng);
      outcome.links_removed = links.removed.size();
      outcome.structure_loss = links.structure_loss;
      break;
    }
    case Strategy::kCollectiveSanitization: {
      outcome.attributes_sanitized = CollectiveAttributes(g, config.utility_category,
                                                          config.num_attributes,
                                                          config.perturb_level);
      auto estimates = AttackerEstimates(g, known);
      LinkStrategyResult links =
          RemoveVulnerableLinks(g, known, estimates, config.epsilon, config.num_links);
      outcome.links_removed = links.removed.size();
      outcome.structure_loss = links.structure_loss;
      break;
    }
  }

  // Latent privacy: collective attack on the sanitized graph.
  {
    auto local = classify::MakeLocalClassifier(config.local_model);
    auto attack =
        classify::RunAttack(g, known, classify::AttackModel::kCollective, *local, config.attack);
    outcome.latent_privacy = LatentPrivacyOfGraph(g, known, attack.distributions);
  }
  // Prediction utility loss: NSLA accuracy drop relative to the original.
  double before = UtilityAccuracy(original, known, config);
  double after = UtilityAccuracy(g, known, config);
  outcome.prediction_loss = std::max(0.0, before - after);
  return outcome;
}

}  // namespace ppdp::tradeoff
