#include "tradeoff/profile.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::tradeoff {

size_t HammingDistance(const std::vector<graph::AttributeValue>& a,
                       const std::vector<graph::AttributeValue>& b) {
  PPDP_CHECK(a.size() == b.size());
  size_t d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++d;
  }
  return d;
}

Profile BuildProfileFromGraph(const graph::SocialGraph& g, size_t max_sets) {
  PPDP_CHECK(max_sets >= 1);
  std::map<std::vector<graph::AttributeValue>, size_t> counts;
  // Per-label vector frequencies, so the candidate space covers users whose
  // latent guesses differ — without this stratification the most frequent
  // vectors all belong to the majority class and every strategy is
  // equally transparent to the adversary.
  std::map<graph::Label, std::map<std::vector<graph::AttributeValue>, size_t>> by_label;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<graph::AttributeValue> row(g.num_categories());
    for (size_t c = 0; c < g.num_categories(); ++c) row[c] = g.Attribute(u, c);
    ++counts[row];
    graph::Label y = g.GetLabel(u);
    if (y != graph::kUnknownLabel) ++by_label[y][row];
  }
  PPDP_CHECK(!counts.empty()) << "profile over empty graph";

  // Round-robin across labels, most frequent unused vector of each.
  std::vector<std::vector<std::pair<std::vector<graph::AttributeValue>, size_t>>> queues;
  for (auto& [unused_label, table] : by_label) {
    std::vector<std::pair<std::vector<graph::AttributeValue>, size_t>> q(table.begin(),
                                                                         table.end());
    std::sort(q.begin(), q.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    queues.push_back(std::move(q));
  }
  std::map<std::vector<graph::AttributeValue>, size_t> chosen;  // vector -> total count
  std::vector<size_t> cursor(queues.size(), 0);
  while (chosen.size() < std::min(max_sets, counts.size())) {
    bool progressed = false;
    for (size_t q = 0; q < queues.size() && chosen.size() < max_sets; ++q) {
      while (cursor[q] < queues[q].size() && chosen.count(queues[q][cursor[q]].first) > 0) {
        ++cursor[q];
      }
      if (cursor[q] >= queues[q].size()) continue;
      const auto& vec = queues[q][cursor[q]].first;
      chosen[vec] = counts[vec];
      ++cursor[q];
      progressed = true;
    }
    if (!progressed) break;
  }

  std::vector<std::pair<std::vector<graph::AttributeValue>, size_t>> ranked(chosen.begin(),
                                                                            chosen.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  Profile profile;
  size_t keep = ranked.size();
  profile.attribute_sets.reserve(keep);
  profile.prior.assign(keep, 0.0);
  for (size_t i = 0; i < keep; ++i) {
    profile.attribute_sets.push_back(ranked[i].first);
    profile.prior[i] = static_cast<double>(ranked[i].second);
  }
  // Fold every non-selected vector's mass into the nearest candidate.
  std::vector<std::pair<std::vector<graph::AttributeValue>, size_t>> all_ranked;
  for (const auto& [vec, count] : counts) {
    if (chosen.count(vec) == 0) all_ranked.emplace_back(vec, count);
  }
  // (reuse the fold loop below with `ranked` = the leftover vectors)
  std::swap(ranked, all_ranked);
  for (size_t i = 0; i < ranked.size(); ++i) {
    size_t best = 0;
    size_t best_d = HammingDistance(ranked[i].first, profile.attribute_sets[0]);
    for (size_t j = 1; j < keep; ++j) {
      size_t d = HammingDistance(ranked[i].first, profile.attribute_sets[j]);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    profile.prior[best] += static_cast<double>(ranked[i].second);
  }
  NormalizeInPlace(profile.prior);
  return profile;
}

std::vector<std::vector<double>> HammingDisparity(const Profile& profile) {
  const size_t n = profile.size();
  std::vector<std::vector<double>> du(n, std::vector<double>(n, 0.0));
  if (n == 0) return du;
  const double width = static_cast<double>(profile.attribute_sets[0].size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      du[i][j] = width > 0.0
                     ? static_cast<double>(
                           HammingDistance(profile.attribute_sets[i], profile.attribute_sets[j])) /
                           width
                     : 0.0;
    }
  }
  return du;
}

std::vector<graph::Label> LatentGuessPerSet(const graph::SocialGraph& g, const Profile& profile) {
  const size_t n = profile.size();
  const size_t labels = static_cast<size_t>(g.num_labels());
  std::vector<std::vector<double>> votes(n, std::vector<double>(labels, 0.0));
  std::vector<double> base(labels, 1.0);  // +1 smoothing
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    graph::Label y = g.GetLabel(u);
    if (y == graph::kUnknownLabel) continue;
    base[static_cast<size_t>(y)] += 1.0;
    std::vector<graph::AttributeValue> row(g.num_categories());
    for (size_t c = 0; c < g.num_categories(); ++c) row[c] = g.Attribute(u, c);
    size_t best = 0;
    size_t best_d = HammingDistance(row, profile.attribute_sets[0]);
    for (size_t j = 1; j < n; ++j) {
      size_t d = HammingDistance(row, profile.attribute_sets[j]);
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    votes[best][static_cast<size_t>(y)] += 1.0;
  }
  // Class-balanced vote: a candidate set is assigned the label it
  // over-represents relative to the base rate (the likelihood-ratio guess),
  // so under heavy class imbalance the candidate space still distinguishes
  // users — the raw majority vote would tag every candidate with the
  // majority label, making every strategy equally transparent.
  std::vector<graph::Label> guesses(n, 0);
  for (size_t j = 0; j < n; ++j) {
    std::vector<double> ratio(labels);
    for (size_t y = 0; y < labels; ++y) ratio[y] = votes[j][y] / base[y];
    guesses[j] = static_cast<graph::Label>(ArgMax(ratio));
  }
  return guesses;
}

}  // namespace ppdp::tradeoff
