#include "tradeoff/utility_loss.h"

#include "common/logging.h"
#include "graph/graph_metrics.h"

namespace ppdp::tradeoff {

double StructureUtilityValue(const graph::SocialGraph& g, graph::NodeId u, graph::NodeId v) {
  return static_cast<double>(graph::SharedFriends(g, u, v));
}

double StructureUtilityLoss(const graph::SocialGraph& g,
                            const std::vector<std::pair<graph::NodeId, graph::NodeId>>& links) {
  double total = 0.0;
  for (const auto& [u, v] : links) total += StructureUtilityValue(g, u, v);
  return total;
}

double LatentPrivacyOfGraph(const graph::SocialGraph& g, const std::vector<bool>& known,
                            const std::vector<classify::LabelDistribution>& attack_distributions) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(attack_distributions.size() == g.num_nodes());
  double error = 0.0;
  size_t hidden = 0;
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) continue;
    graph::Label truth = g.GetLabel(u);
    if (truth == graph::kUnknownLabel) continue;
    ++hidden;
    error += 1.0 - attack_distributions[u][static_cast<size_t>(truth)];
  }
  return hidden == 0 ? 0.0 : error / static_cast<double>(hidden);
}

}  // namespace ppdp::tradeoff
