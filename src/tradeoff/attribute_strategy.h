#ifndef PPDP_TRADEOFF_ATTRIBUTE_STRATEGY_H_
#define PPDP_TRADEOFF_ATTRIBUTE_STRATEGY_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "tradeoff/profile.h"

namespace ppdp::tradeoff {

/// One instance of the (ε, δ)-UtiOptPri attribute side (Definition 4.5.1):
/// choose the sanitization strategy f(X'|X) over the profile's candidate
/// space that maximizes the adversary's minimum expected estimation error
/// subject to a prediction-utility-loss bound δ.
struct StrategyProblem {
  Profile profile;
  /// d_u(X, X'): prediction-utility disparity, |profile| x |profile|.
  std::vector<std::vector<double>> utility_disparity;
  /// Z_X: the latent label the adversary would infer from each true set.
  std::vector<graph::Label> latent_guess;
  int32_t num_labels = 2;
  /// δ: bound on Σ ψ(X) f(X'|X) d_u(X, X').
  double delta = 0.5;
};

/// A solved strategy.
struct StrategyResult {
  /// f[i][j] = P(publish candidate j | true candidate i); rows sum to 1.
  std::vector<std::vector<double>> strategy;
  /// Σ_X' P_X' — the adversary's minimum expected 0/1 estimation error, the
  /// "latent-data privacy" the user maximizes (Equations 4.5-4.8).
  double latent_privacy = 0.0;
  /// Achieved Σ ψ f d_u (must be <= δ).
  double prediction_utility_loss = 0.0;
};

/// Solves the LP of Section 4.5.1 exactly with the dense simplex solver:
///   max Σ_X' P_X'
///   s.t. P_X' <= Σ_X ψ(X) f(X'|X) [Z_X != Ẑ]   for every X', Ẑ
///        Σ_{X,X'} ψ(X) f(X'|X) d_u(X,X') <= δ
///        Σ_X' f(X'|X) = 1, f >= 0.
/// Fails (kFailedPrecondition) when no strategy satisfies δ, which cannot
/// happen for δ >= 0 since the identity strategy has zero loss.
Result<StrategyResult> SolveOptimalStrategy(const StrategyProblem& problem);

/// The dissertation's discretized fallback (Section 4.5.2): each row of f is
/// drawn from the grid {0, 1/d, ..., 1}; `samples` random feasible
/// strategies are scored and the best kept. Used as the ablation baseline
/// against the exact LP.
StrategyResult SolveDiscretizedStrategy(const StrategyProblem& problem, size_t granularity,
                                        size_t samples, Rng& rng);

/// What the adversary knows when inverting the published set (Fig. 4.3).
enum class AdversaryKnowledge {
  kProfileAndStrategy,  ///< full knowledge: the Bayes-optimal attack
  kProfileOnly,         ///< knows ψ, assumes the identity strategy
  kStrategyOnly,        ///< knows f, assumes a uniform prior
  kUnknownBoth,         ///< reads the published set at face value
};

const char* AdversaryKnowledgeName(AdversaryKnowledge knowledge);

/// Expected 0/1 estimation error of an adversary with the given knowledge
/// against strategy `f` (rows of f must sum to 1). Full knowledge yields the
/// lowest privacy; every deficit can only help the user.
double EvaluatePrivacyUnderAdversary(const StrategyProblem& problem,
                                     const std::vector<std::vector<double>>& f,
                                     AdversaryKnowledge knowledge);

/// Achieved prediction-utility loss Σ ψ f d_u of a strategy.
double PredictionLossOfStrategy(const StrategyProblem& problem,
                                const std::vector<std::vector<double>>& f);

}  // namespace ppdp::tradeoff

#endif  // PPDP_TRADEOFF_ATTRIBUTE_STRATEGY_H_
