#include "genomics/inference_attack.h"

#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::genomics {

const char* AttackMethodName(AttackMethod method) {
  switch (method) {
    case AttackMethod::kBeliefPropagation:
      return "BeliefPropagation";
    case AttackMethod::kNaiveBayes:
      return "NaiveBayes";
  }
  return "?";
}

void AddIndividualAttackFactors(FactorGraph& graph, const GwasCatalog& catalog,
                                std::vector<size_t>* trait_variable,
                                std::vector<size_t>* snp_variable) {
  PPDP_CHECK(trait_variable != nullptr && snp_variable != nullptr);
  trait_variable->assign(catalog.num_traits(), std::numeric_limits<size_t>::max());
  snp_variable->assign(catalog.num_snps(), std::numeric_limits<size_t>::max());

  // Trait variables with prevalence priors.
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    size_t var = graph.AddVariable(2);
    (*trait_variable)[t] = var;
    double p = catalog.traits()[t].prevalence;
    graph.AddFactor({var}, {1.0 - p, p});
  }
  // SNP variables (associated loci only) and the pairwise factors
  // f_ji(s_i, t_j) = P(s_i | t_j).
  for (const SnpTraitAssociation& a : catalog.associations()) {
    size_t& snp_var = (*snp_variable)[a.snp];
    if (snp_var == std::numeric_limits<size_t>::max()) {
      snp_var = graph.AddVariable(kNumGenotypes);
    }
    std::vector<double> given_absent = GenotypeGivenTrait(a.control_raf, a.odds_ratio, false);
    std::vector<double> given_present = GenotypeGivenTrait(a.control_raf, a.odds_ratio, true);
    // Table over (snp, trait), trait fastest: index = g*2 + t.
    std::vector<double> table(static_cast<size_t>(kNumGenotypes) * 2);
    for (int g = 0; g < kNumGenotypes; ++g) {
      table[static_cast<size_t>(g) * 2 + 0] = given_absent[static_cast<size_t>(g)];
      table[static_cast<size_t>(g) * 2 + 1] = given_present[static_cast<size_t>(g)];
    }
    graph.AddFactor({snp_var, (*trait_variable)[a.trait]}, std::move(table));
  }

  // Pairwise LD factors φ(g_a, g_b) = corr·[g_b = g_a] + (1-corr)·HWE_b(g_b):
  // the correlation channel that lets a removed SNP be recovered from a
  // published neighbor (Section 5.1's ApoE example). Variables are created
  // on demand for LD-only loci.
  for (const LdPair& ld : catalog.ld_pairs()) {
    for (size_t snp : {ld.a, ld.b}) {
      if ((*snp_variable)[snp] == std::numeric_limits<size_t>::max()) {
        (*snp_variable)[snp] = graph.AddVariable(kNumGenotypes);
      }
    }
    std::vector<double> hw = HardyWeinberg(catalog.BackgroundRaf(ld.b));
    std::vector<double> table(static_cast<size_t>(kNumGenotypes) * kNumGenotypes);
    for (int ga = 0; ga < kNumGenotypes; ++ga) {
      for (int gb = 0; gb < kNumGenotypes; ++gb) {
        double p = (1.0 - ld.correlation) * hw[static_cast<size_t>(gb)];
        if (ga == gb) p += ld.correlation;
        table[static_cast<size_t>(ga) * kNumGenotypes + static_cast<size_t>(gb)] = p;
      }
    }
    graph.AddFactor({(*snp_variable)[ld.a], (*snp_variable)[ld.b]}, std::move(table));
  }
}

void ClampIndividualEvidence(FactorGraph& graph, const Individual& individual,
                             const std::vector<bool>& snp_known,
                             const std::vector<bool>& trait_known,
                             const std::vector<size_t>& trait_variable,
                             const std::vector<size_t>& snp_variable) {
  for (size_t s = 0; s < snp_variable.size(); ++s) {
    if (!snp_known[s]) continue;
    Genotype g = individual.genotypes[s];
    if (g == kUnknownGenotype) continue;
    if (snp_variable[s] == std::numeric_limits<size_t>::max()) continue;
    graph.SetEvidence(snp_variable[s], static_cast<size_t>(g));
  }
  for (size_t t = 0; t < trait_variable.size(); ++t) {
    if (!trait_known[t]) continue;
    TraitStatus status = individual.traits[t];
    if (status == kUnknownTrait) continue;
    graph.SetEvidence(trait_variable[t], static_cast<size_t>(status));
  }
}

FactorGraph BuildAttackGraph(const GwasCatalog& catalog, const TargetView& view,
                             std::vector<size_t>* trait_variable,
                             std::vector<size_t>* snp_variable) {
  FactorGraph graph;
  AddIndividualAttackFactors(graph, catalog, trait_variable, snp_variable);
  ClampIndividualEvidence(graph, view.individual, view.snp_known, view.trait_known,
                          *trait_variable, *snp_variable);
  return graph;
}

namespace {

GenomeAttackResult NaiveBayesInference(const GwasCatalog& catalog, const TargetView& view) {
  GenomeAttackResult result;
  result.trait_marginals.resize(catalog.num_traits());
  result.snp_marginals.resize(catalog.num_snps());

  // Trait posteriors: prior times the likelihood of the published genotypes
  // of directly associated SNPs (attribute-independence assumption).
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    if (view.trait_known[t] && view.individual.traits[t] != kUnknownTrait) {
      result.trait_marginals[t] = {view.individual.traits[t] == kTraitAbsent ? 1.0 : 0.0,
                                   view.individual.traits[t] == kTraitPresent ? 1.0 : 0.0};
      continue;
    }
    double p = catalog.traits()[t].prevalence;
    std::vector<double> posterior = {1.0 - p, p};
    for (size_t id : catalog.AssociationsOfTrait(t)) {
      const SnpTraitAssociation& a = catalog.associations()[id];
      if (!view.snp_known[a.snp]) continue;
      Genotype g = view.individual.genotypes[a.snp];
      if (g == kUnknownGenotype) continue;
      posterior[0] *=
          GenotypeGivenTrait(a.control_raf, a.odds_ratio, false)[static_cast<size_t>(g)];
      posterior[1] *=
          GenotypeGivenTrait(a.control_raf, a.odds_ratio, true)[static_cast<size_t>(g)];
    }
    NormalizeInPlace(posterior);
    result.trait_marginals[t] = std::move(posterior);
  }

  // SNP posteriors: mixture over each adjacent trait's posterior, combined
  // multiplicatively across associations.
  for (size_t s = 0; s < catalog.num_snps(); ++s) {
    if (view.snp_known[s] && view.individual.genotypes[s] != kUnknownGenotype) {
      std::vector<double> one_hot(kNumGenotypes, 0.0);
      one_hot[static_cast<size_t>(view.individual.genotypes[s])] = 1.0;
      result.snp_marginals[s] = std::move(one_hot);
      continue;
    }
    const auto& assoc_ids = catalog.AssociationsOfSnp(s);
    if (assoc_ids.empty()) {
      result.snp_marginals[s] = HardyWeinberg(catalog.BackgroundRaf(s));
      continue;
    }
    std::vector<double> combined(kNumGenotypes, 1.0);
    for (size_t id : assoc_ids) {
      const SnpTraitAssociation& a = catalog.associations()[id];
      const auto& trait_post = result.trait_marginals[a.trait];
      std::vector<double> absent = GenotypeGivenTrait(a.control_raf, a.odds_ratio, false);
      std::vector<double> present = GenotypeGivenTrait(a.control_raf, a.odds_ratio, true);
      for (int g = 0; g < kNumGenotypes; ++g) {
        combined[static_cast<size_t>(g)] *= trait_post[0] * absent[static_cast<size_t>(g)] +
                                            trait_post[1] * present[static_cast<size_t>(g)];
      }
    }
    NormalizeInPlace(combined);
    result.snp_marginals[s] = std::move(combined);
  }
  return result;
}

}  // namespace

GenomeReconstruction ReconstructGenome(const GwasCatalog& catalog, const TargetView& view,
                                       const FactorGraph::BpOptions& options) {
  PPDP_CHECK(view.snp_known.size() == catalog.num_snps());
  PPDP_CHECK(view.trait_known.size() == catalog.num_traits());
  std::vector<size_t> trait_variable, snp_variable;
  FactorGraph graph = BuildAttackGraph(catalog, view, &trait_variable, &snp_variable);
  FactorGraph::MapResult map = graph.RunMaxProduct(options);

  GenomeReconstruction result;
  result.converged = map.converged;
  result.traits.resize(catalog.num_traits());
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    result.traits[t] = static_cast<TraitStatus>(map.assignment[trait_variable[t]]);
  }
  result.genotypes.resize(catalog.num_snps());
  for (size_t s = 0; s < catalog.num_snps(); ++s) {
    if (snp_variable[s] == std::numeric_limits<size_t>::max()) {
      std::vector<double> hw = HardyWeinberg(catalog.BackgroundRaf(s));
      result.genotypes[s] = static_cast<Genotype>(ArgMax(hw));
    } else {
      result.genotypes[s] = static_cast<Genotype>(map.assignment[snp_variable[s]]);
    }
  }
  return result;
}

GenomeAttackResult RunGenomeInference(const GwasCatalog& catalog, const TargetView& view,
                                      AttackMethod method,
                                      const FactorGraph::BpOptions& options) {
  PPDP_CHECK(view.snp_known.size() == catalog.num_snps());
  PPDP_CHECK(view.trait_known.size() == catalog.num_traits());
  if (method == AttackMethod::kNaiveBayes) return NaiveBayesInference(catalog, view);

  std::vector<size_t> trait_variable, snp_variable;
  FactorGraph graph = BuildAttackGraph(catalog, view, &trait_variable, &snp_variable);
  FactorGraph::BpResult bp = graph.RunBeliefPropagation(options);

  GenomeAttackResult result;
  result.bp_iterations = bp.iterations;
  result.converged = bp.converged;
  result.trait_marginals.resize(catalog.num_traits());
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    result.trait_marginals[t] = bp.marginals[trait_variable[t]];
  }
  result.snp_marginals.resize(catalog.num_snps());
  for (size_t s = 0; s < catalog.num_snps(); ++s) {
    if (snp_variable[s] == std::numeric_limits<size_t>::max()) {
      result.snp_marginals[s] = HardyWeinberg(catalog.BackgroundRaf(s));
    } else {
      result.snp_marginals[s] = bp.marginals[snp_variable[s]];
    }
  }
  return result;
}

}  // namespace ppdp::genomics
