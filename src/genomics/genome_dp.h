#ifndef PPDP_GENOMICS_GENOME_DP_H_
#define PPDP_GENOMICS_GENOME_DP_H_

#include <cstdint>

#include "common/result.h"
#include "genomics/genome_data.h"
#include "obs/ledger.h"

namespace ppdp::genomics {

/// The dissertation's headline DP claim, end to end: "approximate the
/// high-dimensional distribution of the original genomic data with a set of
/// well-chosen low-dimensional distributions; then, noise with differential
/// privacy guarantee can be injected into them. Finally, synthetic genomes
/// are sampled from the approximate distribution." (Abstract / §6.3.)
///
/// Synthesizes an ε-DP replacement for a case/control panel: one
/// PrivBayes-style model is fitted per group (case/control membership is
/// assumed public, as in a published GWAS), each with the full ε (parallel
/// composition over disjoint record sets); group sizes are reproduced
/// as-is. Trait columns other than the index trait are resampled from the
/// synthetic genotypes' own statistics and marked unknown (the utility
/// target of such releases is the genotype distribution).
struct DpPanelConfig {
  double epsilon = 1.0;
  double structure_fraction = 0.3;
  uint64_t seed = 1;
  /// Optional audit ledger. Both per-group fits record their spends here
  /// under "case/" and "control/" labels. Because the groups are disjoint
  /// (parallel composition) the release is ε-DP overall, but the ledger
  /// records the raw sequential trail — so supply a budget of at least 2ε
  /// when auditing both groups. Null = each fit audits internally.
  obs::PrivacyLedger* ledger = nullptr;
};

Result<CaseControlPanel> SynthesizeDpPanel(const CaseControlPanel& real,
                                           const DpPanelConfig& config);

/// GWAS service-quality metric: the mean absolute error, over SNPs, of the
/// case-vs-control risk-allele-frequency gap between the real and the
/// synthetic panel — i.e. how well the release preserves exactly the
/// association signal a GWAS computes. 0 = perfect preservation.
double GwasSignalError(const CaseControlPanel& real, const CaseControlPanel& synthetic);

/// Per-group risk-allele frequency of one SNP in a panel (cases when
/// `cases` is true). Individuals with unknown genotype at the locus are
/// skipped; returns 0.5 when the group is empty.
double GroupRaf(const CaseControlPanel& panel, size_t snp, bool cases);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_GENOME_DP_H_
