#ifndef PPDP_GENOMICS_PRIVACY_METRICS_H_
#define PPDP_GENOMICS_PRIVACY_METRICS_H_

#include <cstddef>
#include <vector>

#include "genomics/genome_data.h"
#include "genomics/inference_attack.h"

namespace ppdp::genomics {

/// Normalized-entropy privacy of one attacker marginal (Equation 5.7):
/// H(p) / log(|domain|) in [0, 1]; 1 = the attacker learned nothing.
double EntropyPrivacy(const std::vector<double>& marginal);

/// Attacker estimation error for one variable (Equation 5.8):
/// Σ_x p(x) · ||x − x̂|| with x̂ the attacker's argmax guess and ||·|| the
/// numeric distance normalized by the domain span (so the value is in
/// [0, 1] for both genotypes and traits).
double EstimationError(const std::vector<double>& marginal);

/// δ-privacy (Definition 5.5.1): every listed marginal has entropy privacy
/// at least delta.
bool SatisfiesDeltaPrivacy(const std::vector<std::vector<double>>& marginals, double delta);

/// Privacy summary over a set of target traits.
struct PrivacyReport {
  double min_entropy = 1.0;   ///< worst-protected target (δ-privacy binds here)
  double mean_entropy = 1.0;  ///< Fig 5.2's "entropy" series
  double mean_error = 0.0;    ///< Fig 5.2's "inference error" series
};

/// Evaluates the attack result on the hidden target traits.
PrivacyReport EvaluateTraitPrivacy(const GenomeAttackResult& attack,
                                   const std::vector<size_t>& target_traits);

/// Utility (Definition 5.5.2): the number of SNPs still published in the
/// view.
size_t ReleasedSnpCount(const TargetView& view);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_PRIVACY_METRICS_H_
