#ifndef PPDP_GENOMICS_SNP_H_
#define PPDP_GENOMICS_SNP_H_

#include <cstdint>
#include <vector>

namespace ppdp::genomics {

/// A genotype at one SNP locus, encoded as the risk-allele count relative to
/// the locus's risk allele r: 0 = ρρ (non-risk homozygote), 1 = rρ
/// (heterozygote), 2 = rr (risk homozygote). These correspond to the
/// dissertation's {bb, Bb, BB} per Section 5.2.1 with B read as the risk
/// allele of the association under discussion.
using Genotype = int8_t;

inline constexpr Genotype kUnknownGenotype = -1;
inline constexpr int kNumGenotypes = 3;

/// Trait (phenotype) status of an individual.
using TraitStatus = int8_t;
inline constexpr TraitStatus kTraitAbsent = 0;
inline constexpr TraitStatus kTraitPresent = 1;
inline constexpr TraitStatus kUnknownTrait = -1;

/// Risk-allele frequency in the case group f^a, derived from the control
/// frequency f^o and the per-allele odds ratio O reported by GWAS Catalog
/// (Section 5.3.1; the derivation the text attributes to [49]):
///   O = [f^a/(1-f^a)] / [f^o/(1-f^o)]  =>  f^a = O f^o / (1 + f^o (O - 1)).
/// Requires f^o in (0, 1) and O > 0.
double CaseRafFromControl(double control_raf, double odds_ratio);

/// Genotype distribution under Hardy-Weinberg equilibrium for risk-allele
/// frequency f: {(1-f)^2, 2f(1-f), f^2} indexed by risk-allele count.
///
/// Note: the dissertation's Table 5.2 prints the homozygote entries as √f;
/// those rows do not normalize and are treated as typographical — HWE is the
/// standard population-genetics model the table is clearly built from (its
/// heterozygote row is the HWE term).
std::vector<double> HardyWeinberg(double raf);

/// P(genotype | trait status) for an association with the given control RAF
/// and odds ratio (Tables 5.1/5.2): Hardy-Weinberg at f^a when the trait is
/// present, at f^o when absent. Returned indexed by risk-allele count.
std::vector<double> GenotypeGivenTrait(double control_raf, double odds_ratio, bool trait_present);

/// P(trait | genotype) by Bayes' rule from GenotypeGivenTrait and the trait
/// prevalence p: returns {P(absent|g), P(present|g)}.
std::vector<double> TraitGivenGenotype(double control_raf, double odds_ratio, double prevalence,
                                       Genotype genotype);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_SNP_H_
