#include "genomics/privacy_metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::genomics {

double EntropyPrivacy(const std::vector<double>& marginal) {
  return NormalizedEntropy(marginal);
}

double EstimationError(const std::vector<double>& marginal) {
  PPDP_CHECK(marginal.size() >= 2);
  size_t guess = ArgMax(marginal);
  double span = static_cast<double>(marginal.size() - 1);
  double error = 0.0;
  for (size_t x = 0; x < marginal.size(); ++x) {
    error += marginal[x] *
             std::fabs(static_cast<double>(x) - static_cast<double>(guess)) / span;
  }
  return error;
}

bool SatisfiesDeltaPrivacy(const std::vector<std::vector<double>>& marginals, double delta) {
  return std::all_of(marginals.begin(), marginals.end(), [delta](const std::vector<double>& m) {
    return EntropyPrivacy(m) >= delta - 1e-12;
  });
}

PrivacyReport EvaluateTraitPrivacy(const GenomeAttackResult& attack,
                                   const std::vector<size_t>& target_traits) {
  PrivacyReport report;
  if (target_traits.empty()) return report;
  double entropy_sum = 0.0;
  double error_sum = 0.0;
  report.min_entropy = 1.0;
  for (size_t t : target_traits) {
    PPDP_CHECK(t < attack.trait_marginals.size()) << "target trait out of range";
    double h = EntropyPrivacy(attack.trait_marginals[t]);
    entropy_sum += h;
    report.min_entropy = std::min(report.min_entropy, h);
    error_sum += EstimationError(attack.trait_marginals[t]);
  }
  report.mean_entropy = entropy_sum / static_cast<double>(target_traits.size());
  report.mean_error = error_sum / static_cast<double>(target_traits.size());
  return report;
}

size_t ReleasedSnpCount(const TargetView& view) {
  size_t count = 0;
  for (size_t s = 0; s < view.snp_known.size(); ++s) {
    if (view.snp_known[s] && view.individual.genotypes[s] != kUnknownGenotype) ++count;
  }
  return count;
}

}  // namespace ppdp::genomics
