#ifndef PPDP_GENOMICS_GWAS_CATALOG_H_
#define PPDP_GENOMICS_GWAS_CATALOG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "genomics/snp.h"

namespace ppdp::genomics {

/// A trait (phenotype) with its population prevalence rate.
struct Trait {
  std::string name;
  double prevalence = 0.0;
};

/// One SNP-trait association row as reported by GWAS Catalog: the SNP, the
/// trait, the control-group risk-allele frequency f^o and the odds ratio O
/// of the risk allele (Section 5.3.1's C(T, s_i, r_i^j, O_i^j, f_i^o)).
struct SnpTraitAssociation {
  size_t snp = 0;
  size_t trait = 0;
  double control_raf = 0.2;
  double odds_ratio = 1.5;
};

/// The seven diseases of Table 5.3 with their prevalence rates, verbatim.
std::vector<Trait> Table53Diseases();

/// Prevalence used for the AMD trait itself (late AMD in the 75+ population,
/// not in Table 5.3; documented substitution).
inline constexpr double kAmdPrevalence = 0.085;

/// A pairwise linkage-disequilibrium entry: with probability `correlation`
/// locus `b` carries the same risk-allele count as locus `a`; otherwise it
/// is an independent Hardy-Weinberg draw. This is the publicly available
/// SNP-SNP correlation that lets an attacker recover a *removed* SNP from
/// its published neighbors — the James Watson ApoE scenario of Section 5.1.
struct LdPair {
  size_t a = 0;
  size_t b = 0;
  double correlation = 0.8;  ///< in [0, 1]
};

/// An in-memory SNP-trait association catalog over `num_snps` SNP loci and
/// a trait list — the publicly available background knowledge of the
/// chapter-5 attacker — plus optional pairwise LD entries.
class GwasCatalog {
 public:
  explicit GwasCatalog(size_t num_snps) : num_snps_(num_snps) {}

  /// Adds a trait; returns its index.
  size_t AddTrait(Trait trait);

  /// Adds an association; snp/trait indices must exist, parameters valid.
  void AddAssociation(SnpTraitAssociation association);

  /// Adds an LD pair (a != b, correlation in [0, 1]).
  void AddLdPair(LdPair pair);
  const std::vector<LdPair>& ld_pairs() const { return ld_pairs_; }

  size_t num_snps() const { return num_snps_; }
  size_t num_traits() const { return traits_.size(); }
  const std::vector<Trait>& traits() const { return traits_; }
  const std::vector<SnpTraitAssociation>& associations() const { return associations_; }

  /// Indices into associations() touching the given SNP / trait.
  const std::vector<size_t>& AssociationsOfSnp(size_t snp) const;
  const std::vector<size_t>& AssociationsOfTrait(size_t trait) const;

  /// Background (control) RAF of a SNP: the control RAF of its first
  /// association, or `fallback` for unassociated loci.
  double BackgroundRaf(size_t snp, double fallback = 0.25) const;

 private:
  size_t num_snps_;
  std::vector<Trait> traits_;
  std::vector<SnpTraitAssociation> associations_;
  std::vector<LdPair> ld_pairs_;
  std::vector<std::vector<size_t>> by_snp_{std::vector<std::vector<size_t>>(num_snps_)};
  std::vector<std::vector<size_t>> by_trait_;
};

/// Parameters of the synthetic catalog generator.
struct SyntheticCatalogConfig {
  size_t num_snps = 2000;          ///< panel width (AMD dataset: 90 449, scaled)
  size_t snps_per_trait = 5;       ///< association fan-out per trait
  double min_control_raf = 0.05;
  double max_control_raf = 0.5;
  double min_odds_ratio = 1.2;
  double max_odds_ratio = 3.0;
  bool include_amd = true;         ///< add the AMD trait alongside Table 5.3
  bool shared_snps = true;         ///< let consecutive traits share one SNP, creating
                                   ///< the loops/neighbor structure of Fig 5.1
};

/// Builds a catalog over the Table 5.3 diseases (plus AMD) with seeded
/// random association parameters. Consecutive traits share one SNP when
/// `shared_snps` is set so neighbor-SNP closures (Defs 5.5.3/5.5.4) are
/// non-trivial.
GwasCatalog GenerateSyntheticCatalog(const SyntheticCatalogConfig& config, Rng& rng);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_GWAS_CATALOG_H_
