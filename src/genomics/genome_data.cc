#include "genomics/genome_data.h"

#include "common/logging.h"

namespace ppdp::genomics {

namespace {

/// Draws a genotype from Hardy-Weinberg at the given RAF.
Genotype SampleGenotype(double raf, Rng& rng) {
  return static_cast<Genotype>(rng.Categorical(HardyWeinberg(raf)));
}

/// Copies LD-correlated genotypes: for each catalog LD pair, locus b echoes
/// locus a with the pair's correlation (matching the attack model's factor).
void ApplyLinkageDisequilibrium(const GwasCatalog& catalog, Individual& person, Rng& rng) {
  for (const LdPair& ld : catalog.ld_pairs()) {
    if (rng.Bernoulli(ld.correlation)) person.genotypes[ld.b] = person.genotypes[ld.a];
  }
}

/// Samples the individual's genotypes given already-fixed trait statuses.
void SampleGenotypesGivenTraits(const GwasCatalog& catalog, Individual& person, Rng& rng) {
  person.genotypes.assign(catalog.num_snps(), kUnknownGenotype);
  for (size_t s = 0; s < catalog.num_snps(); ++s) {
    const auto& assoc_ids = catalog.AssociationsOfSnp(s);
    if (assoc_ids.empty()) {
      person.genotypes[s] = SampleGenotype(catalog.BackgroundRaf(s), rng);
      continue;
    }
    // Condition on the first association whose trait is present; otherwise
    // the control frequency applies.
    const SnpTraitAssociation* active = nullptr;
    for (size_t id : assoc_ids) {
      const auto& a = catalog.associations()[id];
      if (person.traits[a.trait] == kTraitPresent) {
        active = &a;
        break;
      }
    }
    if (active != nullptr) {
      person.genotypes[s] =
          SampleGenotype(CaseRafFromControl(active->control_raf, active->odds_ratio), rng);
    } else {
      person.genotypes[s] = SampleGenotype(catalog.associations()[assoc_ids.front()].control_raf,
                                           rng);
    }
  }
}

}  // namespace

Individual SampleIndividual(const GwasCatalog& catalog, Rng& rng) {
  Individual person;
  person.traits.assign(catalog.num_traits(), kTraitAbsent);
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    person.traits[t] = rng.Bernoulli(catalog.traits()[t].prevalence) ? kTraitPresent
                                                                     : kTraitAbsent;
  }
  SampleGenotypesGivenTraits(catalog, person, rng);
  ApplyLinkageDisequilibrium(catalog, person, rng);
  return person;
}

CaseControlPanel GenerateAmdLike(const GwasCatalog& catalog, size_t index_trait, size_t cases,
                                 size_t controls, Rng& rng) {
  PPDP_CHECK(index_trait < catalog.num_traits());
  CaseControlPanel panel;
  panel.index_trait = index_trait;
  panel.individuals.reserve(cases + controls);
  panel.is_case.reserve(cases + controls);
  for (size_t i = 0; i < cases + controls; ++i) {
    bool is_case = i < cases;
    Individual person;
    person.traits.assign(catalog.num_traits(), kTraitAbsent);
    for (size_t t = 0; t < catalog.num_traits(); ++t) {
      if (t == index_trait) {
        person.traits[t] = is_case ? kTraitPresent : kTraitAbsent;
      } else {
        person.traits[t] = rng.Bernoulli(catalog.traits()[t].prevalence) ? kTraitPresent
                                                                         : kTraitAbsent;
      }
    }
    SampleGenotypesGivenTraits(catalog, person, rng);
    ApplyLinkageDisequilibrium(catalog, person, rng);
    panel.individuals.push_back(std::move(person));
    panel.is_case.push_back(is_case);
  }
  return panel;
}

TargetView MakeTargetView(const GwasCatalog& catalog, const Individual& individual,
                          const std::vector<size_t>& known_traits) {
  PPDP_CHECK(individual.genotypes.size() == catalog.num_snps());
  PPDP_CHECK(individual.traits.size() == catalog.num_traits());
  TargetView view;
  view.individual = individual;
  view.snp_known.assign(catalog.num_snps(), false);
  for (const auto& a : catalog.associations()) view.snp_known[a.snp] = true;
  view.trait_known.assign(catalog.num_traits(), false);
  for (size_t t : known_traits) {
    PPDP_CHECK(t < catalog.num_traits());
    view.trait_known[t] = true;
  }
  return view;
}

}  // namespace ppdp::genomics
