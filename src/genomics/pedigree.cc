#include "genomics/pedigree.h"

#include <limits>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::genomics {

size_t Pedigree::AddFounder() {
  father_.push_back(-1);
  mother_.push_back(-1);
  return father_.size() - 1;
}

size_t Pedigree::AddChild(size_t father, size_t mother) {
  PPDP_CHECK(father < father_.size()) << "father index out of range";
  PPDP_CHECK(mother < father_.size()) << "mother index out of range";
  PPDP_CHECK(father != mother) << "parents must be distinct members";
  father_.push_back(static_cast<int64_t>(father));
  mother_.push_back(static_cast<int64_t>(mother));
  return father_.size() - 1;
}

bool Pedigree::IsFounder(size_t member) const {
  PPDP_CHECK(member < father_.size());
  return father_[member] < 0;
}

size_t Pedigree::Father(size_t member) const {
  PPDP_CHECK(!IsFounder(member)) << "founder has no recorded father";
  return static_cast<size_t>(father_[member]);
}

size_t Pedigree::Mother(size_t member) const {
  PPDP_CHECK(!IsFounder(member)) << "founder has no recorded mother";
  return static_cast<size_t>(mother_[member]);
}

Pedigree Pedigree::NuclearFamily(size_t children) {
  Pedigree pedigree;
  size_t father = pedigree.AddFounder();
  size_t mother = pedigree.AddFounder();
  for (size_t c = 0; c < children; ++c) pedigree.AddChild(father, mother);
  return pedigree;
}

std::vector<double> MendelianTable() {
  // P(child = gc | father = gf, mother = gm): each parent transmits a risk
  // allele with probability (risk-allele count)/2.
  std::vector<double> table(static_cast<size_t>(kNumGenotypes) * kNumGenotypes * kNumGenotypes);
  for (int gf = 0; gf < kNumGenotypes; ++gf) {
    double pf = static_cast<double>(gf) / 2.0;
    for (int gm = 0; gm < kNumGenotypes; ++gm) {
      double pm = static_cast<double>(gm) / 2.0;
      double p[kNumGenotypes] = {(1.0 - pf) * (1.0 - pm), pf * (1.0 - pm) + (1.0 - pf) * pm,
                                 pf * pm};
      for (int gc = 0; gc < kNumGenotypes; ++gc) {
        size_t index = (static_cast<size_t>(gf) * kNumGenotypes + static_cast<size_t>(gm)) *
                           kNumGenotypes +
                       static_cast<size_t>(gc);
        table[index] = p[gc];
      }
    }
  }
  return table;
}

std::vector<Individual> SampleFamily(const GwasCatalog& catalog, const Pedigree& pedigree,
                                     Rng& rng) {
  std::vector<Individual> family;
  family.reserve(pedigree.num_members());
  for (size_t m = 0; m < pedigree.num_members(); ++m) {
    if (pedigree.IsFounder(m)) {
      family.push_back(SampleIndividual(catalog, rng));
      continue;
    }
    PPDP_CHECK(pedigree.Father(m) < m && pedigree.Mother(m) < m)
        << "parents must be sampled before children";
    const Individual& father = family[pedigree.Father(m)];
    const Individual& mother = family[pedigree.Mother(m)];
    Individual child;
    child.genotypes.resize(catalog.num_snps());
    for (size_t s = 0; s < catalog.num_snps(); ++s) {
      int allele_f = rng.Bernoulli(static_cast<double>(father.genotypes[s]) / 2.0) ? 1 : 0;
      int allele_m = rng.Bernoulli(static_cast<double>(mother.genotypes[s]) / 2.0) ? 1 : 0;
      child.genotypes[s] = static_cast<Genotype>(allele_f + allele_m);
    }
    // Traits from the Bayes posterior given the child's genotype at each
    // trait's first associated SNP.
    child.traits.assign(catalog.num_traits(), kTraitAbsent);
    for (size_t t = 0; t < catalog.num_traits(); ++t) {
      double p = catalog.traits()[t].prevalence;
      const auto& assoc_ids = catalog.AssociationsOfTrait(t);
      if (!assoc_ids.empty()) {
        const SnpTraitAssociation& a = catalog.associations()[assoc_ids.front()];
        p = TraitGivenGenotype(a.control_raf, a.odds_ratio, p,
                               child.genotypes[a.snp])[1];
      }
      child.traits[t] = rng.Bernoulli(p) ? kTraitPresent : kTraitAbsent;
    }
    family.push_back(std::move(child));
  }
  return family;
}

KinView MakeKinView(const GwasCatalog& catalog, std::vector<Individual> family,
                    const std::vector<size_t>& publishing_members) {
  KinView view;
  size_t members = family.size();
  view.members = std::move(family);
  view.snp_known.assign(members, std::vector<bool>(catalog.num_snps(), false));
  view.trait_known.assign(members, std::vector<bool>(catalog.num_traits(), false));
  for (size_t m : publishing_members) {
    PPDP_CHECK(m < members) << "publishing member out of range";
    for (const auto& a : catalog.associations()) view.snp_known[m][a.snp] = true;
    for (const auto& ld : catalog.ld_pairs()) {
      view.snp_known[m][ld.a] = true;
      view.snp_known[m][ld.b] = true;
    }
  }
  return view;
}

GenomeAttackResult RunKinInference(const GwasCatalog& catalog, const Pedigree& pedigree,
                                   const KinView& view, size_t target_member,
                                   const FactorGraph::BpOptions& options) {
  PPDP_CHECK(view.members.size() == pedigree.num_members());
  PPDP_CHECK(target_member < pedigree.num_members());

  FactorGraph graph;
  std::vector<std::vector<size_t>> trait_vars(pedigree.num_members());
  std::vector<std::vector<size_t>> snp_vars(pedigree.num_members());
  for (size_t m = 0; m < pedigree.num_members(); ++m) {
    AddIndividualAttackFactors(graph, catalog, &trait_vars[m], &snp_vars[m]);
    ClampIndividualEvidence(graph, view.members[m], view.snp_known[m], view.trait_known[m],
                            trait_vars[m], snp_vars[m]);
  }

  // Mendelian factors per (child, modeled SNP locus).
  const std::vector<double> mendel = MendelianTable();
  constexpr size_t kNoVar = std::numeric_limits<size_t>::max();
  for (size_t m = 0; m < pedigree.num_members(); ++m) {
    if (pedigree.IsFounder(m)) continue;
    size_t f = pedigree.Father(m);
    size_t mo = pedigree.Mother(m);
    for (size_t s = 0; s < catalog.num_snps(); ++s) {
      if (snp_vars[m][s] == kNoVar || snp_vars[f][s] == kNoVar || snp_vars[mo][s] == kNoVar) {
        continue;
      }
      graph.AddFactor({snp_vars[f][s], snp_vars[mo][s], snp_vars[m][s]}, mendel);
    }
  }

  FactorGraph::BpResult bp = graph.RunBeliefPropagation(options);

  GenomeAttackResult result;
  result.bp_iterations = bp.iterations;
  result.converged = bp.converged;
  result.trait_marginals.resize(catalog.num_traits());
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    result.trait_marginals[t] = bp.marginals[trait_vars[target_member][t]];
  }
  result.snp_marginals.resize(catalog.num_snps());
  for (size_t s = 0; s < catalog.num_snps(); ++s) {
    if (snp_vars[target_member][s] == kNoVar) {
      result.snp_marginals[s] = HardyWeinberg(catalog.BackgroundRaf(s));
    } else {
      result.snp_marginals[s] = bp.marginals[snp_vars[target_member][s]];
    }
  }
  return result;
}

namespace {

/// Attacker's mean confidence in the target's true genotypes over the
/// distinct associated loci.
double TruthConfidence(const GwasCatalog& catalog, const Pedigree& pedigree,
                       const KinView& view, size_t target,
                       const FactorGraph::BpOptions& options) {
  GenomeAttackResult result = RunKinInference(catalog, pedigree, view, target, options);
  double total = 0.0;
  size_t count = 0;
  std::vector<bool> seen(catalog.num_snps(), false);
  for (const auto& a : catalog.associations()) {
    if (seen[a.snp]) continue;
    seen[a.snp] = true;
    total += result.snp_marginals[a.snp][static_cast<size_t>(
        view.members[target].genotypes[a.snp])];
    ++count;
  }
  PPDP_CHECK(count > 0) << "catalog has no associations";
  return total / static_cast<double>(count);
}

}  // namespace

KinSanitizeResult GreedyKinSanitize(const GwasCatalog& catalog, const Pedigree& pedigree,
                                    KinView view, size_t target_member,
                                    const KinSanitizeOptions& options,
                                    KinView* sanitized_view) {
  PPDP_CHECK(target_member < pedigree.num_members());

  // Candidate pool: every published (member, SNP) entry of the relatives.
  std::vector<KinSanitizedEntry> pool;
  for (size_t m = 0; m < pedigree.num_members(); ++m) {
    if (m == target_member) continue;
    for (size_t s = 0; s < catalog.num_snps(); ++s) {
      if (view.snp_known[m][s] && view.members[m].genotypes[s] != kUnknownGenotype) {
        pool.push_back({m, s});
      }
    }
  }

  KinSanitizeResult result;
  double current = TruthConfidence(catalog, pedigree, view, target_member, options.bp);
  result.confidence_trace.push_back(current);

  while (current > options.max_truth_confidence && !pool.empty() &&
         result.sanitized.size() < options.max_sanitized) {
    size_t best_index = pool.size();
    double best_confidence = current;
    for (size_t i = 0; i < pool.size(); ++i) {
      view.snp_known[pool[i].member][pool[i].snp] = false;
      double confidence = TruthConfidence(catalog, pedigree, view, target_member, options.bp);
      view.snp_known[pool[i].member][pool[i].snp] = true;
      if (confidence < best_confidence - 1e-12) {
        best_confidence = confidence;
        best_index = i;
      }
    }
    if (best_index == pool.size()) break;  // nothing helps anymore
    KinSanitizedEntry pick = pool[best_index];
    view.snp_known[pick.member][pick.snp] = false;
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(best_index));
    current = best_confidence;
    result.sanitized.push_back(pick);
    result.confidence_trace.push_back(current);
  }

  result.satisfied = current <= options.max_truth_confidence + 1e-12;
  for (size_t m = 0; m < pedigree.num_members(); ++m) {
    if (m == target_member) continue;
    for (size_t s = 0; s < catalog.num_snps(); ++s) {
      if (view.snp_known[m][s] && view.members[m].genotypes[s] != kUnknownGenotype) {
        ++result.released;
      }
    }
  }
  if (sanitized_view != nullptr) *sanitized_view = std::move(view);
  return result;
}

}  // namespace ppdp::genomics
