#include "genomics/gwas_catalog.h"

#include "common/logging.h"

namespace ppdp::genomics {

std::vector<Trait> Table53Diseases() {
  // Table 5.3, verbatim.
  return {
      {"Alzheimer's Disease", 0.0167},
      {"Celiac Disease", 0.0075},
      {"Heart Diseases", 0.115},
      {"Hypertensive disease", 0.29},
      {"Liver carcinoma", 0.000017},
      {"Osteoporosis", 0.103},
      {"Stomach Carcinoma", 0.00025},
  };
}

size_t GwasCatalog::AddTrait(Trait trait) {
  PPDP_CHECK(trait.prevalence > 0.0 && trait.prevalence < 1.0)
      << "prevalence of " << trait.name << " out of (0,1): " << trait.prevalence;
  traits_.push_back(std::move(trait));
  by_trait_.emplace_back();
  return traits_.size() - 1;
}

void GwasCatalog::AddAssociation(SnpTraitAssociation association) {
  PPDP_CHECK(association.snp < num_snps_) << "SNP index out of range";
  PPDP_CHECK(association.trait < traits_.size()) << "trait index out of range";
  PPDP_CHECK(association.control_raf > 0.0 && association.control_raf < 1.0);
  PPDP_CHECK(association.odds_ratio > 0.0);
  size_t index = associations_.size();
  by_snp_[association.snp].push_back(index);
  by_trait_[association.trait].push_back(index);
  associations_.push_back(association);
}

void GwasCatalog::AddLdPair(LdPair pair) {
  PPDP_CHECK(pair.a < num_snps_ && pair.b < num_snps_) << "LD SNP index out of range";
  PPDP_CHECK(pair.a != pair.b) << "LD pair must link distinct loci";
  PPDP_CHECK(pair.correlation >= 0.0 && pair.correlation <= 1.0);
  ld_pairs_.push_back(pair);
}

const std::vector<size_t>& GwasCatalog::AssociationsOfSnp(size_t snp) const {
  PPDP_CHECK(snp < num_snps_);
  return by_snp_[snp];
}

const std::vector<size_t>& GwasCatalog::AssociationsOfTrait(size_t trait) const {
  PPDP_CHECK(trait < traits_.size());
  return by_trait_[trait];
}

double GwasCatalog::BackgroundRaf(size_t snp, double fallback) const {
  PPDP_CHECK(snp < num_snps_);
  if (by_snp_[snp].empty()) return fallback;
  return associations_[by_snp_[snp].front()].control_raf;
}

GwasCatalog GenerateSyntheticCatalog(const SyntheticCatalogConfig& config, Rng& rng) {
  PPDP_CHECK(config.num_snps >= config.snps_per_trait * 2)
      << "panel too narrow for the requested fan-out";
  GwasCatalog catalog(config.num_snps);
  for (const Trait& t : Table53Diseases()) catalog.AddTrait(t);
  if (config.include_amd) {
    catalog.AddTrait({"Age-related macular degeneration", kAmdPrevalence});
  }

  auto random_raf = [&] {
    return config.min_control_raf +
           rng.UniformReal() * (config.max_control_raf - config.min_control_raf);
  };
  auto random_or = [&] {
    return config.min_odds_ratio +
           rng.UniformReal() * (config.max_odds_ratio - config.min_odds_ratio);
  };

  size_t cursor = 0;  // next fresh SNP locus
  size_t previous_shared = 0;
  for (size_t t = 0; t < catalog.num_traits(); ++t) {
    for (size_t k = 0; k < config.snps_per_trait; ++k) {
      size_t snp;
      if (config.shared_snps && t > 0 && k == 0) {
        // Share one SNP with the previous trait — the Fig 5.1 topology where
        // s2 links t1 and t2.
        snp = previous_shared;
      } else {
        snp = cursor++ % config.num_snps;
      }
      if (k == config.snps_per_trait - 1) previous_shared = snp;
      catalog.AddAssociation({snp, t, random_raf(), random_or()});
    }
  }
  return catalog;
}

}  // namespace ppdp::genomics
