#ifndef PPDP_GENOMICS_INFERENCE_ATTACK_H_
#define PPDP_GENOMICS_INFERENCE_ATTACK_H_

#include <vector>

#include "genomics/factor_graph.h"
#include "genomics/genome_data.h"
#include "genomics/gwas_catalog.h"

namespace ppdp::genomics {

/// The two prediction methods compared in Fig 5.2: the chapter's factor
/// graph + belief propagation attack, and the Naive Bayes baseline.
enum class AttackMethod { kBeliefPropagation, kNaiveBayes };

const char* AttackMethodName(AttackMethod method);

/// Posterior marginals of every SNP and trait under the attacker's model.
struct GenomeAttackResult {
  std::vector<std::vector<double>> snp_marginals;    ///< per SNP, size kNumGenotypes
  std::vector<std::vector<double>> trait_marginals;  ///< per trait, size 2
  size_t bp_iterations = 0;                          ///< 0 for the NB baseline
  bool converged = true;
};

/// Builds the Section 5.4 factor graph from the catalog (trait priors =
/// prevalence; pairwise factors f_ji(s_i, t_j) = P(s_i | t_j) via the
/// odds-ratio RAF model), clamps the published SNPs/traits of `view` as
/// evidence, and infers the hidden variables. Unassociated SNPs fall back
/// to their background Hardy-Weinberg marginal; published variables are
/// returned as one-hot.
GenomeAttackResult RunGenomeInference(const GwasCatalog& catalog, const TargetView& view,
                                      AttackMethod method,
                                      const FactorGraph::BpOptions& options = {});

/// MAP reconstruction of the target: the attack's "name one genome" flavor
/// (the dissertation calls the method a *reconstruction attack*). Runs
/// max-product on the same graph as RunGenomeInference and returns the
/// most likely joint genotype/trait assignment; published entries pass
/// through unchanged, SNPs outside the model get the background-HWE mode.
struct GenomeReconstruction {
  std::vector<Genotype> genotypes;
  std::vector<TraitStatus> traits;
  bool converged = true;
};

GenomeReconstruction ReconstructGenome(const GwasCatalog& catalog, const TargetView& view,
                                       const FactorGraph::BpOptions& options = {});

/// Constructs the attack factor graph without running inference; exposed
/// for tests and benchmarks. `trait_variable`/`snp_variable` (size
/// num_traits / num_snps) receive variable ids, SIZE_MAX for SNPs that are
/// not in any association or LD pair (no variable is created for them).
FactorGraph BuildAttackGraph(const GwasCatalog& catalog, const TargetView& view,
                             std::vector<size_t>* trait_variable,
                             std::vector<size_t>* snp_variable);

/// Adds one individual's chapter-5 variables and factors (trait prevalence
/// priors, association factors f_ji = P(s|t), LD factors) to `graph`,
/// filling the variable maps. Building block shared by the single-target
/// attack and the kin (pedigree) attack.
void AddIndividualAttackFactors(FactorGraph& graph, const GwasCatalog& catalog,
                                std::vector<size_t>* trait_variable,
                                std::vector<size_t>* snp_variable);

/// Clamps the published genotypes/trait statuses of one individual as
/// evidence on the variables in the given maps.
void ClampIndividualEvidence(FactorGraph& graph, const Individual& individual,
                             const std::vector<bool>& snp_known,
                             const std::vector<bool>& trait_known,
                             const std::vector<size_t>& trait_variable,
                             const std::vector<size_t>& snp_variable);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_INFERENCE_ATTACK_H_
