#ifndef PPDP_GENOMICS_SNP_SANITIZER_H_
#define PPDP_GENOMICS_SNP_SANITIZER_H_

#include <cstddef>
#include <vector>

#include "genomics/genome_data.h"
#include "genomics/inference_attack.h"
#include "genomics/privacy_metrics.h"

namespace ppdp::genomics {

/// Neighbor SNPs of a trait (Definition 5.5.3): SNPs directly associated
/// with the trait, SNPs of traits sharing SNPs with it, and SNPs sharing
/// traits with those — i.e. the two-and-a-half-hop closure in the bipartite
/// association graph. Returned sorted ascending.
std::vector<size_t> NeighborSnpsOfTrait(const GwasCatalog& catalog, size_t trait);

/// Neighbor SNPs of a SNP (Definition 5.5.4), analogous closure; the SNP
/// itself is excluded.
std::vector<size_t> NeighborSnpsOfSnp(const GwasCatalog& catalog, size_t snp);

/// Options of the GPUT greedy solver (Definition 5.5.6).
struct GputOptions {
  double delta = 0.8;                 ///< δ-privacy target on every hidden trait
  size_t max_sanitized = SIZE_MAX;    ///< cap on removed SNPs
  AttackMethod method = AttackMethod::kBeliefPropagation;
  FactorGraph::BpOptions bp;
};

/// What the greedy sanitizer did.
struct GputResult {
  std::vector<size_t> sanitized;       ///< SNPs hidden, in pick order
  std::vector<double> privacy_trace;   ///< min target entropy after each pick
                                       ///< (index 0 = before any sanitization)
  bool satisfied = false;              ///< δ-privacy reached
  size_t released = 0;                 ///< SNPs still published (the utility)
};

/// Greedy GPUT: starting from `view`, repeatedly hides the vulnerable
/// neighbor SNP whose removal most raises the minimum entropy privacy of
/// the hidden `target_traits` (Theorems 5.5.1/5.5.2 justify greedy on this
/// monotone submodular objective), until δ-privacy holds, the candidate
/// pool is exhausted, or `max_sanitized` is hit. Mutates nothing outside
/// the returned structures; the sanitized view is also returned.
GputResult GreedySanitize(const GwasCatalog& catalog, TargetView view,
                          const std::vector<size_t>& target_traits, const GputOptions& options,
                          TargetView* sanitized_view = nullptr);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_SNP_SANITIZER_H_
