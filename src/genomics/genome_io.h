#ifndef PPDP_GENOMICS_GENOME_IO_H_
#define PPDP_GENOMICS_GENOME_IO_H_

#include <string>

#include "common/result.h"
#include "genomics/genome_data.h"
#include "genomics/gwas_catalog.h"

namespace ppdp::genomics {

/// Persists a case/control genotype panel as CSV: one row per individual,
/// columns `case,t0..tk,s0..sn` with genotypes as risk-allele counts and
/// unknown entries blank. Round-trips through LoadPanel.
Status SavePanel(const CaseControlPanel& panel, const std::string& path);

/// Loads a panel saved by SavePanel. `num_traits`/`num_snps` are recovered
/// from the header.
Result<CaseControlPanel> LoadPanel(const std::string& path);

/// Reader-side cap on a catalog's SNP panel width. The header's num_snps
/// sizes per-SNP index vectors, so an unvalidated value would let a
/// five-line file allocate arbitrarily; real panels (AMD: 90 449) sit far
/// below this.
inline constexpr size_t kMaxCatalogSnps = 1u << 20;

/// Persists a GwasCatalog as CSV rows:
///
///   gwas_catalog,v1,<num_snps>
///   trait,<name>,<prevalence>
///   assoc,<snp>,<trait>,<control_raf>,<odds_ratio>
///   ld,<a>,<b>,<correlation>
///
/// Round-trips through ParseGwasCatalog/LoadGwasCatalog.
Status SaveGwasCatalog(const GwasCatalog& catalog, const std::string& path);

/// Parses catalog CSV content. Every semantic rule the GwasCatalog setters
/// PPDP_CHECK — prevalence/RAF in (0,1), positive odds ratio, in-range
/// SNP/trait indices, distinct LD loci with correlation in [0,1] — is
/// validated here first and surfaces as kInvalidArgument, so hostile input
/// can never reach an abort. This is the fuzzed entry point (fuzz_gwas).
Result<GwasCatalog> ParseGwasCatalog(const std::string& content);

/// Reads and parses `path`.
Result<GwasCatalog> LoadGwasCatalog(const std::string& path);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_GENOME_IO_H_
