#ifndef PPDP_GENOMICS_GENOME_IO_H_
#define PPDP_GENOMICS_GENOME_IO_H_

#include <string>

#include "common/result.h"
#include "genomics/genome_data.h"
#include "genomics/gwas_catalog.h"

namespace ppdp::genomics {

/// Persists a case/control genotype panel as CSV: one row per individual,
/// columns `case,t0..tk,s0..sn` with genotypes as risk-allele counts and
/// unknown entries blank. Round-trips through LoadPanel.
Status SavePanel(const CaseControlPanel& panel, const std::string& path);

/// Loads a panel saved by SavePanel. `num_traits`/`num_snps` are recovered
/// from the header.
Result<CaseControlPanel> LoadPanel(const std::string& path);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_GENOME_IO_H_
