#include "genomics/factor_graph.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "exec/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::genomics {

size_t FactorGraph::AddVariable(size_t domain_size) {
  PPDP_CHECK(domain_size >= 2) << "variable needs at least two states";
  domains_.push_back(domain_size);
  evidence_.push_back(-1);
  factors_of_variable_.emplace_back();
  return domains_.size() - 1;
}

size_t FactorGraph::AddFactor(std::vector<size_t> variables, std::vector<double> table) {
  PPDP_CHECK(!variables.empty()) << "factor needs at least one variable";
  size_t expected = 1;
  for (size_t v : variables) {
    PPDP_CHECK(v < domains_.size()) << "variable " << v << " out of range";
    expected *= domains_[v];
  }
  for (size_t i = 0; i < variables.size(); ++i) {
    for (size_t j = i + 1; j < variables.size(); ++j) {
      PPDP_CHECK(variables[i] != variables[j]) << "factor repeats variable " << variables[i];
    }
  }
  PPDP_CHECK(table.size() == expected)
      << "table has " << table.size() << " entries, expected " << expected;
  for (double v : table) PPDP_CHECK(v >= 0.0) << "negative factor entry " << v;

  size_t id = factors_.size();
  for (size_t v : variables) factors_of_variable_[v].push_back(id);
  factors_.push_back({std::move(variables), std::move(table)});
  return id;
}

void FactorGraph::SetEvidence(size_t variable, size_t value) {
  PPDP_CHECK(variable < domains_.size());
  PPDP_CHECK(value < domains_[variable]) << "evidence value out of domain";
  evidence_[variable] = static_cast<int64_t>(value);
}

void FactorGraph::ClearEvidence(size_t variable) {
  PPDP_CHECK(variable < domains_.size());
  evidence_[variable] = -1;
}

bool FactorGraph::HasEvidence(size_t variable) const {
  PPDP_CHECK(variable < domains_.size());
  return evidence_[variable] >= 0;
}

double FactorGraph::TableValue(const Factor& f, const std::vector<size_t>& assignment) const {
  size_t index = 0;
  for (size_t k = 0; k < f.variables.size(); ++k) {
    index = index * domains_[f.variables[k]] + assignment[k];
  }
  return f.table[index];
}

FactorGraph::BpResult FactorGraph::RunBeliefPropagation() const {
  return RunBeliefPropagation(BpOptions());
}

FactorGraph::MapResult FactorGraph::RunMaxProduct() const { return RunMaxProduct(BpOptions()); }

FactorGraph::BpResult FactorGraph::RunBeliefPropagation(const BpOptions& options) const {
  Messages messages = RunMessagePassing(options, /*max_product=*/false);
  BpResult result;
  result.iterations = messages.iterations;
  result.converged = messages.converged;
  result.marginals = Beliefs(messages);
  return result;
}

FactorGraph::MapResult FactorGraph::RunMaxProduct(const BpOptions& options) const {
  Messages messages = RunMessagePassing(options, /*max_product=*/true);
  MapResult result;
  result.iterations = messages.iterations;
  result.converged = messages.converged;
  std::vector<std::vector<double>> beliefs = Beliefs(messages);
  result.assignment.resize(domains_.size());
  for (size_t v = 0; v < domains_.size(); ++v) {
    size_t best = 0;
    for (size_t x = 1; x < beliefs[v].size(); ++x) {
      if (beliefs[v][x] > beliefs[v][best]) best = x;
    }
    result.assignment[v] = best;
  }
  return result;
}

FactorGraph::Messages FactorGraph::RunMessagePassing(const BpOptions& options,
                                                     bool max_product) const {
  obs::TraceSpan span(max_product ? "genomics.bp.max_product" : "genomics.bp.sum_product");
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("genomics.bp.runs");
  static obs::Counter& iteration_count =
      obs::MetricsRegistry::Global().counter("genomics.bp.iterations");
  static obs::Histogram& iteration_seconds =
      obs::MetricsRegistry::Global().histogram("genomics.bp.iteration_seconds");
  runs.Increment();
  // Messages are indexed by (factor, position-within-factor).
  Messages messages;
  auto& to_factor = messages.to_factor;
  auto& to_variable = messages.to_variable;
  to_factor.resize(factors_.size());
  to_variable.resize(factors_.size());
  for (size_t f = 0; f < factors_.size(); ++f) {
    const auto& vars = factors_[f].variables;
    to_factor[f].resize(vars.size());
    to_variable[f].resize(vars.size());
    for (size_t k = 0; k < vars.size(); ++k) {
      double uniform = 1.0 / static_cast<double>(domains_[vars[k]]);
      to_factor[f][k].assign(domains_[vars[k]], uniform);
      to_variable[f][k].assign(domains_[vars[k]], uniform);
    }
  }

  // Evidence indicator for a variable, or nullptr when free.
  auto evidence_message = [&](size_t v) {
    std::vector<double> msg(domains_[v], 0.0);
    msg[static_cast<size_t>(evidence_[v])] = 1.0;
    return msg;
  };

  const exec::ExecConfig exec_config{options.threads};
  // Factors are tiny (pairwise tables over domains 2-3); batch enough per
  // chunk that the fan-out cost amortizes.
  constexpr size_t kFactorGrain = 32;
  std::vector<double> factor_change(factors_.size(), 0.0);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double iteration_start = obs::MonotonicSeconds();
    // Variable -> factor. Each (f, k) slot of to_factor is written exactly
    // once and reads only the previous phase's to_variable — the flooding
    // schedule is already double-buffered, so fanning the factors out
    // changes nothing about the fixed point or the iterates.
    exec::ParallelFor(
        0, factors_.size(), kFactorGrain,
        [&](size_t f) {
          const auto& vars = factors_[f].variables;
          for (size_t k = 0; k < vars.size(); ++k) {
            size_t v = vars[k];
            if (evidence_[v] >= 0) {
              to_factor[f][k] = evidence_message(v);
              continue;
            }
            std::vector<double> msg(domains_[v], 1.0);
            for (size_t other_f : factors_of_variable_[v]) {
              if (other_f == f) continue;
              const auto& other_vars = factors_[other_f].variables;
              for (size_t k2 = 0; k2 < other_vars.size(); ++k2) {
                if (other_vars[k2] != v) continue;
                for (size_t x = 0; x < domains_[v]; ++x) msg[x] *= to_variable[other_f][k2][x];
              }
            }
            NormalizeInPlace(msg);
            to_factor[f][k] = std::move(msg);
          }
        },
        exec_config);

    // Factor -> variable.
    exec::ParallelFor(
        0, factors_.size(), kFactorGrain,
        [&](size_t f) {
          const auto& vars = factors_[f].variables;
          std::vector<size_t> assignment(vars.size(), 0);
          std::vector<std::vector<double>> fresh(vars.size());
          for (size_t k = 0; k < vars.size(); ++k) fresh[k].assign(domains_[vars[k]], 0.0);
          // One sweep over the joint table accumulates every outgoing
          // message.
          for (;;) {
            double value = TableValue(factors_[f], assignment);
            if (value > 0.0) {
              // Precompute the product of all incoming messages, then divide
              // out each position's own (guarding zero messages with a
              // direct product).
              for (size_t k = 0; k < vars.size(); ++k) {
                double partial = value;
                for (size_t k2 = 0; k2 < vars.size(); ++k2) {
                  if (k2 == k) continue;
                  partial *= to_factor[f][k2][assignment[k2]];
                }
                if (max_product) {
                  fresh[k][assignment[k]] = std::max(fresh[k][assignment[k]], partial);
                } else {
                  fresh[k][assignment[k]] += partial;
                }
              }
            }
            // Mixed-radix increment (last variable fastest); exit on
            // wrap-around.
            size_t pos = vars.size();
            bool wrapped = false;
            for (;;) {
              if (pos == 0) {
                wrapped = true;
                break;
              }
              --pos;
              if (++assignment[pos] < domains_[vars[pos]]) break;
              assignment[pos] = 0;
            }
            if (wrapped) break;
          }
          double change = 0.0;
          for (size_t k = 0; k < vars.size(); ++k) {
            NormalizeInPlace(fresh[k]);
            if (options.damping > 0.0) {
              for (size_t x = 0; x < fresh[k].size(); ++x) {
                fresh[k][x] = (1.0 - options.damping) * fresh[k][x] +
                              options.damping * to_variable[f][k][x];
              }
              NormalizeInPlace(fresh[k]);
            }
            change = std::max(change, L1Distance(fresh[k], to_variable[f][k]));
            to_variable[f][k] = std::move(fresh[k]);
          }
          factor_change[f] = change;
        },
        exec_config);
    double max_change = 0.0;
    for (double change : factor_change) max_change = std::max(max_change, change);

    messages.iterations = iter + 1;
    iteration_count.Increment();
    iteration_seconds.Observe(obs::MonotonicSeconds() - iteration_start);
    if (max_change < options.tolerance) {
      messages.converged = true;
      break;
    }
  }
  PPDP_LOG(DEBUG) << "BP finished" << obs::Field("iterations", messages.iterations)
                  << obs::Field("converged", messages.converged)
                  << obs::Field("variables", domains_.size())
                  << obs::Field("factors", factors_.size())
                  << obs::Field("seconds", span.ElapsedSeconds());
  return messages;
}

std::vector<std::vector<double>> FactorGraph::Beliefs(const Messages& messages) const {
  // Beliefs: product of incoming factor messages (and evidence).
  std::vector<std::vector<double>> beliefs(domains_.size());
  for (size_t v = 0; v < domains_.size(); ++v) {
    if (evidence_[v] >= 0) {
      std::vector<double> one_hot(domains_[v], 0.0);
      one_hot[static_cast<size_t>(evidence_[v])] = 1.0;
      beliefs[v] = std::move(one_hot);
      continue;
    }
    std::vector<double> belief(domains_[v], 1.0);
    for (size_t f : factors_of_variable_[v]) {
      const auto& vars = factors_[f].variables;
      for (size_t k = 0; k < vars.size(); ++k) {
        if (vars[k] != v) continue;
        for (size_t x = 0; x < domains_[v]; ++x) belief[x] *= messages.to_variable[f][k][x];
      }
    }
    NormalizeInPlace(belief);
    beliefs[v] = std::move(belief);
  }
  return beliefs;
}

std::vector<size_t> FactorGraph::ExactMap(size_t max_states) const {
  size_t states = 1;
  for (size_t d : domains_) {
    PPDP_CHECK(states <= max_states / d) << "joint space too large for exact MAP";
    states *= d;
  }
  std::vector<size_t> assignment(domains_.size(), 0);
  std::vector<size_t> best_assignment(domains_.size(), 0);
  double best_weight = -1.0;
  std::vector<size_t> local;
  for (size_t state = 0; state < states; ++state) {
    bool consistent = true;
    for (size_t v = 0; v < domains_.size() && consistent; ++v) {
      if (evidence_[v] >= 0 && assignment[v] != static_cast<size_t>(evidence_[v])) {
        consistent = false;
      }
    }
    if (consistent) {
      double weight = 1.0;
      for (const Factor& f : factors_) {
        local.clear();
        for (size_t v : f.variables) local.push_back(assignment[v]);
        weight *= TableValue(f, local);
        if (weight == 0.0) break;
      }
      if (weight > best_weight) {
        best_weight = weight;
        best_assignment = assignment;
      }
    }
    for (size_t v = domains_.size(); v > 0; --v) {
      if (++assignment[v - 1] < domains_[v - 1]) break;
      assignment[v - 1] = 0;
    }
  }
  PPDP_CHECK(best_weight > 0.0) << "all joint states have zero probability";
  return best_assignment;
}

std::vector<std::vector<double>> FactorGraph::ExactMarginals(size_t max_states) const {
  size_t states = 1;
  for (size_t d : domains_) {
    PPDP_CHECK(states <= max_states / d) << "joint space too large for exact enumeration";
    states *= d;
  }
  std::vector<std::vector<double>> marginals(domains_.size());
  for (size_t v = 0; v < domains_.size(); ++v) marginals[v].assign(domains_[v], 0.0);

  std::vector<size_t> assignment(domains_.size(), 0);
  double total = 0.0;
  for (size_t state = 0; state < states; ++state) {
    bool consistent = true;
    for (size_t v = 0; v < domains_.size() && consistent; ++v) {
      if (evidence_[v] >= 0 && assignment[v] != static_cast<size_t>(evidence_[v])) {
        consistent = false;
      }
    }
    if (consistent) {
      double weight = 1.0;
      std::vector<size_t> local;
      for (const Factor& f : factors_) {
        local.clear();
        for (size_t v : f.variables) local.push_back(assignment[v]);
        weight *= TableValue(f, local);
        if (weight == 0.0) break;
      }
      if (weight > 0.0) {
        total += weight;
        for (size_t v = 0; v < domains_.size(); ++v) marginals[v][assignment[v]] += weight;
      }
    }
    // Mixed-radix increment.
    for (size_t v = domains_.size(); v > 0; --v) {
      if (++assignment[v - 1] < domains_[v - 1]) break;
      assignment[v - 1] = 0;
    }
  }
  PPDP_CHECK(total > 0.0) << "all joint states have zero probability";
  for (auto& m : marginals) {
    for (double& p : m) p /= total;
  }
  return marginals;
}

}  // namespace ppdp::genomics
