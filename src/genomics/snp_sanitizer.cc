#include "genomics/snp_sanitizer.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace ppdp::genomics {

namespace {

/// Traits directly associated with any SNP in `snps`.
std::set<size_t> TraitsOfSnps(const GwasCatalog& catalog, const std::set<size_t>& snps) {
  std::set<size_t> traits;
  for (size_t s : snps) {
    for (size_t id : catalog.AssociationsOfSnp(s)) {
      traits.insert(catalog.associations()[id].trait);
    }
  }
  return traits;
}

/// SNPs directly associated with any trait in `traits`.
std::set<size_t> SnpsOfTraits(const GwasCatalog& catalog, const std::set<size_t>& traits) {
  std::set<size_t> snps;
  for (size_t t : traits) {
    for (size_t id : catalog.AssociationsOfTrait(t)) {
      snps.insert(catalog.associations()[id].snp);
    }
  }
  return snps;
}

}  // namespace

std::vector<size_t> NeighborSnpsOfTrait(const GwasCatalog& catalog, size_t trait) {
  PPDP_CHECK(trait < catalog.num_traits());
  // Case 1: directly associated SNPs.
  std::set<size_t> snps = SnpsOfTraits(catalog, {trait});
  // Case 2: SNPs of traits that share SNPs with `trait`.
  std::set<size_t> sharing_traits = TraitsOfSnps(catalog, snps);
  std::set<size_t> case2 = SnpsOfTraits(catalog, sharing_traits);
  snps.insert(case2.begin(), case2.end());
  // Case 3: SNPs sharing traits with the case-2 SNPs.
  std::set<size_t> case3 = SnpsOfTraits(catalog, TraitsOfSnps(catalog, case2));
  snps.insert(case3.begin(), case3.end());
  return {snps.begin(), snps.end()};
}

std::vector<size_t> NeighborSnpsOfSnp(const GwasCatalog& catalog, size_t snp) {
  PPDP_CHECK(snp < catalog.num_snps());
  // Case 1: SNPs sharing a trait with `snp`.
  std::set<size_t> own_traits = TraitsOfSnps(catalog, {snp});
  std::set<size_t> snps = SnpsOfTraits(catalog, own_traits);
  // Case 2: SNPs of traits associated with the case-1 SNPs.
  std::set<size_t> case2 = SnpsOfTraits(catalog, TraitsOfSnps(catalog, snps));
  snps.insert(case2.begin(), case2.end());
  // Case 3: SNPs sharing traits with the case-2 SNPs.
  std::set<size_t> case3 = SnpsOfTraits(catalog, TraitsOfSnps(catalog, case2));
  snps.insert(case3.begin(), case3.end());
  snps.erase(snp);
  return {snps.begin(), snps.end()};
}

GputResult GreedySanitize(const GwasCatalog& catalog, TargetView view,
                          const std::vector<size_t>& target_traits, const GputOptions& options,
                          TargetView* sanitized_view) {
  PPDP_CHECK(!target_traits.empty()) << "no target traits to protect";
  PPDP_CHECK(options.delta >= 0.0 && options.delta <= 1.0);

  auto evaluate = [&](const TargetView& v) {
    GenomeAttackResult attack = RunGenomeInference(catalog, v, options.method, options.bp);
    return EvaluateTraitPrivacy(attack, target_traits);
  };

  // Candidate pool: published neighbor SNPs of any target trait.
  std::set<size_t> pool;
  for (size_t t : target_traits) {
    PPDP_CHECK(t < catalog.num_traits());
    for (size_t s : NeighborSnpsOfTrait(catalog, t)) {
      if (view.snp_known[s] && view.individual.genotypes[s] != kUnknownGenotype) pool.insert(s);
    }
  }

  GputResult result;
  PrivacyReport current = evaluate(view);
  result.privacy_trace.push_back(current.min_entropy);

  while (current.min_entropy < options.delta && !pool.empty() &&
         result.sanitized.size() < options.max_sanitized) {
    size_t best_snp = catalog.num_snps();
    PrivacyReport best_report;
    double best_key = -1.0;
    for (size_t s : pool) {
      view.snp_known[s] = false;
      PrivacyReport report = evaluate(view);
      view.snp_known[s] = true;
      // Lexicographic: raise the worst-protected target first, then mean.
      double key = report.min_entropy + 1e-3 * report.mean_entropy;
      if (key > best_key) {
        best_key = key;
        best_snp = s;
        best_report = report;
      }
    }
    if (best_snp == catalog.num_snps()) break;
    // A vulnerable neighbor SNP must actually help; stop when nothing does.
    if (best_report.min_entropy <= current.min_entropy + 1e-12 &&
        best_report.mean_entropy <= current.mean_entropy + 1e-12) {
      break;
    }
    view.snp_known[best_snp] = false;
    pool.erase(best_snp);
    current = best_report;
    result.sanitized.push_back(best_snp);
    result.privacy_trace.push_back(current.min_entropy);
  }

  result.satisfied = current.min_entropy >= options.delta - 1e-12;
  result.released = ReleasedSnpCount(view);
  if (sanitized_view != nullptr) *sanitized_view = std::move(view);
  return result;
}

}  // namespace ppdp::genomics
