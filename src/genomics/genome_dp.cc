#include "genomics/genome_dp.h"

#include <cmath>

#include "common/logging.h"
#include "dp/synthesizer.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace ppdp::genomics {

namespace {

/// Genotype rows of one group as synthesizer input.
dp::CategoricalData GroupRows(const CaseControlPanel& panel, bool cases) {
  dp::CategoricalData rows;
  for (size_t i = 0; i < panel.individuals.size(); ++i) {
    if (panel.is_case[i] != cases) continue;
    const auto& genotypes = panel.individuals[i].genotypes;
    dp::CategoricalRow row(genotypes.size());
    for (size_t s = 0; s < genotypes.size(); ++s) {
      // Unknown entries are imputed to the non-risk homozygote for model
      // fitting; published GWAS panels are effectively complete.
      row[s] = genotypes[s] == kUnknownGenotype ? 0 : genotypes[s];
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace

Result<CaseControlPanel> SynthesizeDpPanel(const CaseControlPanel& real,
                                           const DpPanelConfig& config) {
  obs::TraceSpan span("genomics.dp_panel");
  if (real.individuals.empty()) return Status::InvalidArgument("empty panel");
  size_t num_traits = real.individuals[0].traits.size();
  size_t num_snps = real.individuals[0].genotypes.size();

  CaseControlPanel synthetic;
  synthetic.index_trait = real.index_trait;
  for (bool cases : {true, false}) {
    dp::CategoricalData rows = GroupRows(real, cases);
    if (rows.empty()) continue;
    dp::SynthesizerConfig model_config;
    model_config.epsilon = config.epsilon;
    model_config.structure_fraction = config.structure_fraction;
    model_config.domain = kNumGenotypes;
    model_config.seed = config.seed + (cases ? 1 : 2);
    PPDP_ASSIGN_OR_RETURN(
        auto model, dp::PrivateSynthesizer::Fit(rows, model_config, config.ledger,
                                                cases ? "case/" : "control/"));
    Rng rng(config.seed + (cases ? 11 : 12));
    dp::CategoricalData sampled = model.Sample(rows.size(), rng);
    for (const auto& row : sampled) {
      Individual person;
      person.genotypes.resize(num_snps);
      for (size_t s = 0; s < num_snps; ++s) person.genotypes[s] = row[s];
      person.traits.assign(num_traits, kUnknownTrait);
      if (real.index_trait < num_traits) {
        person.traits[real.index_trait] = cases ? kTraitPresent : kTraitAbsent;
      }
      synthetic.individuals.push_back(std::move(person));
      synthetic.is_case.push_back(cases);
    }
  }
  if (synthetic.individuals.empty()) {
    return Status::InvalidArgument("panel has neither cases nor controls");
  }
  PPDP_LOG(INFO) << "DP panel synthesized" << obs::Field("individuals", synthetic.individuals.size())
                 << obs::Field("snps", num_snps) << obs::Field("epsilon", config.epsilon)
                 << obs::Field("seconds", span.ElapsedSeconds());
  return synthetic;
}

double GroupRaf(const CaseControlPanel& panel, size_t snp, bool cases) {
  double alleles = 0.0;
  double people = 0.0;
  for (size_t i = 0; i < panel.individuals.size(); ++i) {
    if (panel.is_case[i] != cases) continue;
    Genotype g = panel.individuals[i].genotypes[snp];
    if (g == kUnknownGenotype) continue;
    alleles += static_cast<double>(g);
    people += 1.0;
  }
  return people == 0.0 ? 0.5 : alleles / (2.0 * people);
}

double GwasSignalError(const CaseControlPanel& real, const CaseControlPanel& synthetic) {
  PPDP_CHECK(!real.individuals.empty() && !synthetic.individuals.empty());
  size_t num_snps = real.individuals[0].genotypes.size();
  PPDP_CHECK(synthetic.individuals[0].genotypes.size() == num_snps)
      << "panels cover different SNP sets";
  double total = 0.0;
  for (size_t s = 0; s < num_snps; ++s) {
    double real_gap = GroupRaf(real, s, true) - GroupRaf(real, s, false);
    double synthetic_gap = GroupRaf(synthetic, s, true) - GroupRaf(synthetic, s, false);
    total += std::fabs(real_gap - synthetic_gap);
  }
  return total / static_cast<double>(num_snps);
}

}  // namespace ppdp::genomics
