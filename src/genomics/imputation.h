#ifndef PPDP_GENOMICS_IMPUTATION_H_
#define PPDP_GENOMICS_IMPUTATION_H_

#include <vector>

#include "common/result.h"
#include "genomics/factor_graph.h"
#include "genomics/genome_data.h"

namespace ppdp::genomics {

/// Genotype imputation over a linkage-disequilibrium chain — the
/// related-work line the chapter builds on (genotype imputation [57] and
/// the "pre-phasing" strategy [56]): loci are positionally ordered and
/// adjacent loci correlate; missing genotypes are recovered by exact
/// forward-backward inference on the chain (a tree, so BP is exact).
///
/// The chain model per adjacent pair (i, i+1):
///   P(g_{i+1} | g_i) = c_i · [g_{i+1} = g_i] + (1 − c_i) · HWE_{i+1}(g_{i+1}).

/// A fitted chain: per-locus background RAFs plus adjacent correlations.
struct LdChain {
  std::vector<double> raf;          ///< per locus
  std::vector<double> correlation;  ///< size num_loci − 1, in [0, 1]
  size_t num_loci() const { return raf.size(); }
};

/// Estimates the chain from a reference panel (the publicly available
/// resource real imputation uses): RAFs from allele counts, correlations by
/// inverting the chain model against the empirical same-genotype rate of
/// each adjacent pair. Entries with no usable rows fall back to RAF 0.25 /
/// correlation 0. Fails on an empty panel.
Result<LdChain> EstimateLdChain(const CaseControlPanel& reference);

/// Posterior marginals of every locus of `person` given its known
/// genotypes, under the chain (unknown entries get informative posteriors,
/// known entries come back one-hot).
std::vector<std::vector<double>> ImputeGenotypes(const Individual& person,
                                                 const LdChain& chain);

/// Fills kUnknownGenotype entries with the posterior mode.
Individual ImputeFill(const Individual& person, const LdChain& chain);

/// Imputation accuracy experiment helper: hides `mask_fraction` of the
/// genotypes of each individual of `panel` (seeded), imputes them back with
/// the chain fitted on the *unmasked* panel, and returns the fraction
/// recovered exactly. `baseline_accuracy` (optional out) receives the
/// accuracy of the no-LD HWE-mode guesser on the same mask.
double MaskedImputationAccuracy(const CaseControlPanel& panel, double mask_fraction,
                                uint64_t seed, double* baseline_accuracy = nullptr);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_IMPUTATION_H_
