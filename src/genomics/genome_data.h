#ifndef PPDP_GENOMICS_GENOME_DATA_H_
#define PPDP_GENOMICS_GENOME_DATA_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "genomics/gwas_catalog.h"
#include "genomics/snp.h"

namespace ppdp::genomics {

/// One individual's record: genotypes across the catalog's SNP panel plus
/// trait statuses. kUnknownGenotype/kUnknownTrait mark unpublished entries
/// (from the attacker's point of view).
struct Individual {
  std::vector<Genotype> genotypes;
  std::vector<TraitStatus> traits;
};

/// A case/control panel in the shape of the AMD dataset (Section 5.6.1):
/// `individuals[i]` with `is_case[i]` indicating membership of the case
/// group for the panel's index trait.
struct CaseControlPanel {
  std::vector<Individual> individuals;
  std::vector<bool> is_case;
  size_t index_trait = 0;  ///< the trait defining case/control membership
};

/// Samples one individual consistently with the catalog: trait statuses are
/// drawn from the prevalence rates, then each SNP's genotype from
/// Hardy-Weinberg at the case or control RAF of its (first) association —
/// present traits pull associated SNPs toward the case frequencies.
/// Unassociated SNPs draw from the background RAF.
Individual SampleIndividual(const GwasCatalog& catalog, Rng& rng);

/// Generates an AMD-style case/control panel: `cases` individuals
/// conditioned on having the index trait, `controls` conditioned on not
/// having it (the real dataset: 96 cases / 50 controls over 90 449 SNPs;
/// the synthetic catalog scales the SNP count).
CaseControlPanel GenerateAmdLike(const GwasCatalog& catalog, size_t index_trait, size_t cases,
                                 size_t controls, Rng& rng);

/// The attacker's view of a target individual: which SNPs/traits are
/// published (S^K, T^K) vs hidden (S^U, T^U). Hidden entries in
/// `individual` stay as ground truth for scoring.
struct TargetView {
  Individual individual;             ///< ground truth
  std::vector<bool> snp_known;       ///< S^K membership
  std::vector<bool> trait_known;     ///< T^K membership
};

/// Builds a view where every associated SNP is published and every trait is
/// hidden except those in `known_traits`.
TargetView MakeTargetView(const GwasCatalog& catalog, const Individual& individual,
                          const std::vector<size_t>& known_traits);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_GENOME_DATA_H_
