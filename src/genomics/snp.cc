#include "genomics/snp.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::genomics {

double CaseRafFromControl(double control_raf, double odds_ratio) {
  PPDP_CHECK(control_raf > 0.0 && control_raf < 1.0)
      << "control RAF must be in (0,1), got " << control_raf;
  PPDP_CHECK(odds_ratio > 0.0) << "odds ratio must be positive, got " << odds_ratio;
  return odds_ratio * control_raf / (1.0 + control_raf * (odds_ratio - 1.0));
}

std::vector<double> HardyWeinberg(double raf) {
  PPDP_CHECK(raf >= 0.0 && raf <= 1.0) << "RAF out of [0,1]: " << raf;
  double q = 1.0 - raf;
  return {q * q, 2.0 * raf * q, raf * raf};
}

std::vector<double> GenotypeGivenTrait(double control_raf, double odds_ratio,
                                       bool trait_present) {
  double raf = trait_present ? CaseRafFromControl(control_raf, odds_ratio) : control_raf;
  return HardyWeinberg(raf);
}

std::vector<double> TraitGivenGenotype(double control_raf, double odds_ratio, double prevalence,
                                       Genotype genotype) {
  PPDP_CHECK(genotype >= 0 && genotype < kNumGenotypes) << "bad genotype " << int(genotype);
  PPDP_CHECK(prevalence > 0.0 && prevalence < 1.0) << "prevalence out of (0,1): " << prevalence;
  double g_given_present =
      GenotypeGivenTrait(control_raf, odds_ratio, true)[static_cast<size_t>(genotype)];
  double g_given_absent =
      GenotypeGivenTrait(control_raf, odds_ratio, false)[static_cast<size_t>(genotype)];
  std::vector<double> posterior = {g_given_absent * (1.0 - prevalence),
                                   g_given_present * prevalence};
  NormalizeInPlace(posterior);
  return posterior;
}

}  // namespace ppdp::genomics
