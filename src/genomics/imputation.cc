#include "genomics/imputation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace ppdp::genomics {

namespace {

/// Expected same-genotype rate of two independent HWE draws at RAFs a, b.
double IndependentAgreement(double raf_a, double raf_b) {
  std::vector<double> pa = HardyWeinberg(raf_a);
  std::vector<double> pb = HardyWeinberg(raf_b);
  double agreement = 0.0;
  for (int g = 0; g < kNumGenotypes; ++g) {
    agreement += pa[static_cast<size_t>(g)] * pb[static_cast<size_t>(g)];
  }
  return agreement;
}

/// Builds the chain factor graph for one individual; returns variable ids.
std::vector<size_t> BuildChainGraph(const Individual& person, const LdChain& chain,
                                    FactorGraph& graph) {
  const size_t n = chain.num_loci();
  std::vector<size_t> vars(n);
  for (size_t i = 0; i < n; ++i) {
    vars[i] = graph.AddVariable(kNumGenotypes);
  }
  // Locus-0 prior; transitions P(g_{i+1} | g_i) for the rest.
  graph.AddFactor({vars[0]}, HardyWeinberg(chain.raf[0]));
  for (size_t i = 0; i + 1 < n; ++i) {
    std::vector<double> hw = HardyWeinberg(chain.raf[i + 1]);
    std::vector<double> table(static_cast<size_t>(kNumGenotypes) * kNumGenotypes);
    for (int ga = 0; ga < kNumGenotypes; ++ga) {
      for (int gb = 0; gb < kNumGenotypes; ++gb) {
        double p = (1.0 - chain.correlation[i]) * hw[static_cast<size_t>(gb)];
        if (ga == gb) p += chain.correlation[i];
        table[static_cast<size_t>(ga) * kNumGenotypes + static_cast<size_t>(gb)] = p;
      }
    }
    graph.AddFactor({vars[i], vars[i + 1]}, std::move(table));
  }
  for (size_t i = 0; i < n; ++i) {
    if (person.genotypes[i] != kUnknownGenotype) {
      graph.SetEvidence(vars[i], static_cast<size_t>(person.genotypes[i]));
    }
  }
  return vars;
}

}  // namespace

Result<LdChain> EstimateLdChain(const CaseControlPanel& reference) {
  if (reference.individuals.empty()) return Status::InvalidArgument("empty reference panel");
  const size_t n = reference.individuals[0].genotypes.size();
  if (n == 0) return Status::InvalidArgument("reference has no loci");

  LdChain chain;
  chain.raf.assign(n, 0.25);
  chain.correlation.assign(n > 0 ? n - 1 : 0, 0.0);

  for (size_t i = 0; i < n; ++i) {
    double alleles = 0.0, people = 0.0;
    for (const Individual& person : reference.individuals) {
      Genotype g = person.genotypes[i];
      if (g == kUnknownGenotype) continue;
      alleles += static_cast<double>(g);
      people += 1.0;
    }
    if (people > 0.0) {
      chain.raf[i] = std::clamp(alleles / (2.0 * people), 0.01, 0.99);
    }
  }
  for (size_t i = 0; i + 1 < n; ++i) {
    double same = 0.0, rows = 0.0;
    for (const Individual& person : reference.individuals) {
      Genotype a = person.genotypes[i];
      Genotype b = person.genotypes[i + 1];
      if (a == kUnknownGenotype || b == kUnknownGenotype) continue;
      rows += 1.0;
      if (a == b) same += 1.0;
    }
    if (rows == 0.0) continue;
    // Invert s = c + (1 − c)·base for the chain model's agreement rate.
    double base = IndependentAgreement(chain.raf[i], chain.raf[i + 1]);
    double s = same / rows;
    if (base >= 1.0 - 1e-9) continue;
    chain.correlation[i] = std::clamp((s - base) / (1.0 - base), 0.0, 1.0);
  }
  return chain;
}

std::vector<std::vector<double>> ImputeGenotypes(const Individual& person,
                                                 const LdChain& chain) {
  PPDP_CHECK(person.genotypes.size() == chain.num_loci())
      << "individual covers " << person.genotypes.size() << " loci, chain "
      << chain.num_loci();
  FactorGraph graph;
  std::vector<size_t> vars = BuildChainGraph(person, chain, graph);
  FactorGraph::BpOptions options;
  options.max_iterations = 2 * chain.num_loci() + 10;  // chains need one sweep per hop
  FactorGraph::BpResult bp = graph.RunBeliefPropagation(options);
  std::vector<std::vector<double>> marginals(chain.num_loci());
  for (size_t i = 0; i < chain.num_loci(); ++i) marginals[i] = bp.marginals[vars[i]];
  return marginals;
}

Individual ImputeFill(const Individual& person, const LdChain& chain) {
  std::vector<std::vector<double>> marginals = ImputeGenotypes(person, chain);
  Individual filled = person;
  for (size_t i = 0; i < chain.num_loci(); ++i) {
    if (filled.genotypes[i] == kUnknownGenotype) {
      filled.genotypes[i] = static_cast<Genotype>(ArgMax(marginals[i]));
    }
  }
  return filled;
}

double MaskedImputationAccuracy(const CaseControlPanel& panel, double mask_fraction,
                                uint64_t seed, double* baseline_accuracy) {
  PPDP_CHECK(!panel.individuals.empty());
  PPDP_CHECK(mask_fraction > 0.0 && mask_fraction < 1.0);
  LdChain chain = EstimateLdChain(panel).value();
  Rng rng(seed);

  size_t recovered = 0, baseline_recovered = 0, masked_total = 0;
  for (const Individual& person : panel.individuals) {
    Individual masked = person;
    std::vector<size_t> hidden;
    for (size_t i = 0; i < masked.genotypes.size(); ++i) {
      if (masked.genotypes[i] != kUnknownGenotype && rng.Bernoulli(mask_fraction)) {
        masked.genotypes[i] = kUnknownGenotype;
        hidden.push_back(i);
      }
    }
    if (hidden.empty()) continue;
    Individual filled = ImputeFill(masked, chain);
    for (size_t i : hidden) {
      ++masked_total;
      if (filled.genotypes[i] == person.genotypes[i]) ++recovered;
      Genotype hwe_mode = static_cast<Genotype>(ArgMax(HardyWeinberg(chain.raf[i])));
      if (hwe_mode == person.genotypes[i]) ++baseline_recovered;
    }
  }
  if (masked_total == 0) return 0.0;
  if (baseline_accuracy != nullptr) {
    *baseline_accuracy =
        static_cast<double>(baseline_recovered) / static_cast<double>(masked_total);
  }
  return static_cast<double>(recovered) / static_cast<double>(masked_total);
}

}  // namespace ppdp::genomics
