#ifndef PPDP_GENOMICS_PEDIGREE_H_
#define PPDP_GENOMICS_PEDIGREE_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "genomics/factor_graph.h"
#include "genomics/genome_data.h"
#include "genomics/gwas_catalog.h"
#include "genomics/inference_attack.h"

namespace ppdp::genomics {

/// A family pedigree: members are founders (no recorded parents) or
/// children of two earlier members. Chapter 5's kin-privacy threat — "once
/// the owner of a genome is identified, he … puts his relatives' privacy
/// at risk" — is modeled by running the inference attack over the whole
/// family jointly, with Mendelian factors tying each child's genotypes to
/// its parents'.
class Pedigree {
 public:
  Pedigree() = default;

  /// Adds a member with no recorded parents; returns its index.
  size_t AddFounder();

  /// Adds a child of two existing members; returns its index.
  size_t AddChild(size_t father, size_t mother);

  size_t num_members() const { return father_.size(); }
  bool IsFounder(size_t member) const;
  /// Parent indices; only valid when !IsFounder(member).
  size_t Father(size_t member) const;
  size_t Mother(size_t member) const;

  /// Convenience: a nuclear family — two founders plus `children` children.
  static Pedigree NuclearFamily(size_t children);

 private:
  std::vector<int64_t> father_;  ///< -1 for founders
  std::vector<int64_t> mother_;
};

/// Mendelian transmission table P(child | father, mother) over risk-allele
/// counts, row-major with the child fastest (27 entries): each parent
/// transmits a risk allele with probability (own count)/2.
std::vector<double> MendelianTable();

/// Samples a family consistent with the catalog: founders via
/// SampleIndividual; each child's genotypes by Mendelian transmission from
/// the (already sampled) parents, its traits from the Bayes posterior given
/// its first associated genotype per trait.
std::vector<Individual> SampleFamily(const GwasCatalog& catalog, const Pedigree& pedigree,
                                     Rng& rng);

/// What each family member has published.
struct KinView {
  std::vector<Individual> members;               ///< ground truth per member
  std::vector<std::vector<bool>> snp_known;      ///< [member][snp]
  std::vector<std::vector<bool>> trait_known;    ///< [member][trait]
};

/// Builds a view where `publishing_members` publish their associated SNPs
/// and everything else is hidden (all traits hidden for everyone).
KinView MakeKinView(const GwasCatalog& catalog, std::vector<Individual> family,
                    const std::vector<size_t>& publishing_members);

/// Joint kin inference: one chapter-5 attack graph per member (trait priors
/// + association + LD factors) plus a Mendelian factor per (child,
/// associated SNP) triple linking child/father/mother variables. Runs loopy
/// BP and returns the marginals of `target_member`.
GenomeAttackResult RunKinInference(const GwasCatalog& catalog, const Pedigree& pedigree,
                                   const KinView& view, size_t target_member,
                                   const FactorGraph::BpOptions& options = {});

/// Options of the kin-protection sanitizer.
struct KinSanitizeOptions {
  double max_truth_confidence = 0.55;  ///< cap on the attacker's mean P(true genotype)
  size_t max_sanitized = SIZE_MAX;     ///< cap on hidden (member, SNP) entries
  FactorGraph::BpOptions bp;
};

/// One hidden entry of the kin sanitizer.
struct KinSanitizedEntry {
  size_t member = 0;
  size_t snp = 0;
};

/// Result of GreedyKinSanitize.
struct KinSanitizeResult {
  std::vector<KinSanitizedEntry> sanitized;  ///< pick order
  std::vector<double> confidence_trace;      ///< attacker confidence after each pick
                                             ///< (index 0 = before sanitization)
  bool satisfied = false;
  size_t released = 0;  ///< entries the relatives still publish
};

/// The kin extension of the GPUT sanitizer: the family wants to publish as
/// much as possible while the attacker's mean confidence in the
/// *non-publishing target's* true genotypes (over its associated SNPs)
/// stays below the cap. Greedily hides the relative's published SNP whose
/// removal lowers that confidence most, until the cap holds or nothing
/// helps. The target's own data stays untouched (it publishes nothing).
KinSanitizeResult GreedyKinSanitize(const GwasCatalog& catalog, const Pedigree& pedigree,
                                    KinView view, size_t target_member,
                                    const KinSanitizeOptions& options,
                                    KinView* sanitized_view = nullptr);

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_PEDIGREE_H_
