#ifndef PPDP_GENOMICS_FACTOR_GRAPH_H_
#define PPDP_GENOMICS_FACTOR_GRAPH_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace ppdp::genomics {

/// A generic discrete factor graph with loopy sum-product belief
/// propagation (Section 5.2.2 / 5.4). Variables have small categorical
/// domains (SNPs: 3, traits: 2); factors carry dense tables over the joint
/// domain of their arguments (row-major, last argument fastest).
///
/// Evidence clamps a variable to one value, implementing the known-SNP /
/// known-trait initialization of the message-passing iteration.
class FactorGraph {
 public:
  FactorGraph() = default;

  /// Adds a variable with `domain_size` states; returns its id.
  size_t AddVariable(size_t domain_size);

  /// Adds a factor over `variables` with `table` of size
  /// Π domain(variables[k]), row-major with the last variable fastest.
  /// Entries must be non-negative. Returns the factor id.
  size_t AddFactor(std::vector<size_t> variables, std::vector<double> table);

  /// Clamps `variable` to `value` (kept across runs until cleared).
  void SetEvidence(size_t variable, size_t value);
  void ClearEvidence(size_t variable);
  bool HasEvidence(size_t variable) const;

  size_t num_variables() const { return domains_.size(); }
  size_t num_factors() const { return factors_.size(); }
  size_t domain(size_t variable) const { return domains_.at(variable); }

  /// Loopy-BP options.
  struct BpOptions {
    size_t max_iterations = 50;
    double damping = 0.0;   ///< 0 = plain updates; 0.3-0.5 helps loopy graphs
    double tolerance = 1e-8;  ///< max message L∞ change for convergence
    /// Exec convention (0 = all cores, 1 = serial). The flooding schedule
    /// double-buffers between variable-side and factor-side messages, so
    /// per-factor updates within a phase are independent — marginals are
    /// byte-identical at every thread count.
    int threads = 0;
  };

  /// Per-variable marginals after message passing.
  struct BpResult {
    std::vector<std::vector<double>> marginals;
    size_t iterations = 0;
    bool converged = false;
  };

  /// Runs flooding-schedule sum-product BP. Exact on trees; approximate on
  /// loopy graphs (the chapter-5 graphs are near-trees).
  BpResult RunBeliefPropagation(const BpOptions& options) const;
  BpResult RunBeliefPropagation() const;

  /// Exact marginals by exhaustive enumeration, for validating BP on small
  /// graphs. Dies if the joint state space exceeds `max_states`.
  std::vector<std::vector<double>> ExactMarginals(size_t max_states = 1u << 20) const;

  /// Max-product (MAP) message passing: returns the (approximately) most
  /// likely joint assignment — the "reconstruction" flavor of the chapter-5
  /// attack, which names a single genome rather than per-locus marginals.
  /// Exact on trees; approximate on loopy graphs. Evidence is respected.
  struct MapResult {
    std::vector<size_t> assignment;  ///< one state per variable
    size_t iterations = 0;
    bool converged = false;
  };
  MapResult RunMaxProduct(const BpOptions& options) const;
  MapResult RunMaxProduct() const;

  /// Exact MAP by exhaustive enumeration (ties break toward the
  /// lexicographically smaller assignment). Same state-space guard as
  /// ExactMarginals.
  std::vector<size_t> ExactMap(size_t max_states = 1u << 20) const;

 private:
  struct Factor {
    std::vector<size_t> variables;
    std::vector<double> table;
  };

  /// Message state shared by sum-product and max-product passes.
  struct Messages {
    std::vector<std::vector<std::vector<double>>> to_factor;
    std::vector<std::vector<std::vector<double>>> to_variable;
    size_t iterations = 0;
    bool converged = false;
  };

  /// Runs the flooding schedule; `max_product` swaps the factor-side sum
  /// for a max.
  Messages RunMessagePassing(const BpOptions& options, bool max_product) const;

  /// Per-variable beliefs (product of incoming messages and evidence).
  std::vector<std::vector<double>> Beliefs(const Messages& messages) const;

  double TableValue(const Factor& f, const std::vector<size_t>& assignment) const;

  std::vector<size_t> domains_;
  std::vector<int64_t> evidence_;  ///< -1 = free
  std::vector<Factor> factors_;
  std::vector<std::vector<size_t>> factors_of_variable_;
};

}  // namespace ppdp::genomics

#endif  // PPDP_GENOMICS_FACTOR_GRAPH_H_
