#include "genomics/genome_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/table.h"
#include "fault/fault.h"

namespace ppdp::genomics {

namespace {

Result<int64_t> ParseInt(const std::string& cell) {
  if (cell.empty()) return Status::InvalidArgument("empty integer cell");
  char* end = nullptr;
  int64_t v = std::strtoll(cell.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + cell + "'");
  }
  return v;
}

Result<size_t> ParseIndex(const std::string& cell, size_t bound, const char* what) {
  PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(cell));
  if (v < 0 || static_cast<uint64_t>(v) >= bound) {
    return Status::InvalidArgument(std::string(what) + " index " + cell + " out of range [0, " +
                                   std::to_string(bound) + ")");
  }
  return static_cast<size_t>(v);
}

Result<double> ParseDouble(const std::string& cell) {
  if (cell.empty()) return Status::InvalidArgument("empty numeric cell");
  char* end = nullptr;
  double v = std::strtod(cell.c_str(), &end);
  if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
    return Status::InvalidArgument("not a finite number: '" + cell + "'");
  }
  return v;
}

}  // namespace

Status SavePanel(const CaseControlPanel& panel, const std::string& path) {
  if (panel.individuals.empty()) return Status::InvalidArgument("empty panel");
  size_t num_traits = panel.individuals[0].traits.size();
  size_t num_snps = panel.individuals[0].genotypes.size();
  std::vector<std::string> columns = {"case"};
  for (size_t t = 0; t < num_traits; ++t) columns.push_back("t" + std::to_string(t));
  for (size_t s = 0; s < num_snps; ++s) columns.push_back("s" + std::to_string(s));
  Table table(columns);
  for (size_t i = 0; i < panel.individuals.size(); ++i) {
    const Individual& person = panel.individuals[i];
    if (person.traits.size() != num_traits || person.genotypes.size() != num_snps) {
      return Status::InvalidArgument("ragged panel");
    }
    std::vector<std::string> row = {panel.is_case[i] ? "1" : "0"};
    for (TraitStatus t : person.traits) {
      row.push_back(t == kUnknownTrait ? "" : std::to_string(static_cast<int>(t)));
    }
    for (Genotype g : person.genotypes) {
      row.push_back(g == kUnknownGenotype ? "" : std::to_string(static_cast<int>(g)));
    }
    table.AddRow(std::move(row));
  }
  return table.WriteCsv(path);
}

Result<CaseControlPanel> LoadPanel(const std::string& path) {
  // Same CSV I/O failure point as graph::LoadGraph: a drop models an
  // unreadable file and surfaces as a retryable kUnavailable.
  fault::FaultDecision fault_decision = PPDP_FAULT_POINT("io.csv.read", fault::kMaskDrop);
  if (fault_decision.drop()) return fault_decision.AsStatus("io.csv.read");
  PPDP_ASSIGN_OR_RETURN(auto rows, ReadCsv(path));
  if (rows.size() < 2) return Status::InvalidArgument("panel file has no data rows");
  const auto& header = rows[0];
  if (header.empty() || header[0] != "case") {
    return Status::InvalidArgument("panel header must start with 'case'");
  }
  size_t num_traits = 0;
  size_t num_snps = 0;
  for (size_t c = 1; c < header.size(); ++c) {
    if (!header[c].empty() && header[c][0] == 't') {
      ++num_traits;
    } else if (!header[c].empty() && header[c][0] == 's') {
      ++num_snps;
    } else {
      return Status::InvalidArgument("unexpected panel column '" + header[c] + "'");
    }
  }

  CaseControlPanel panel;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 1 + num_traits + num_snps) {
      return Status::InvalidArgument("panel row " + std::to_string(r) + " has wrong width");
    }
    PPDP_ASSIGN_OR_RETURN(int64_t is_case, ParseInt(row[0]));
    Individual person;
    person.traits.resize(num_traits, kUnknownTrait);
    for (size_t t = 0; t < num_traits; ++t) {
      if (row[1 + t].empty()) continue;
      PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[1 + t]));
      if (v < 0 || v > 1) return Status::InvalidArgument("trait status out of range");
      person.traits[t] = static_cast<TraitStatus>(v);
    }
    person.genotypes.resize(num_snps, kUnknownGenotype);
    for (size_t s = 0; s < num_snps; ++s) {
      if (row[1 + num_traits + s].empty()) continue;
      PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[1 + num_traits + s]));
      if (v < 0 || v >= kNumGenotypes) return Status::InvalidArgument("genotype out of range");
      person.genotypes[s] = static_cast<Genotype>(v);
    }
    panel.individuals.push_back(std::move(person));
    panel.is_case.push_back(is_case != 0);
  }
  return panel;
}

Status SaveGwasCatalog(const GwasCatalog& catalog, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::Unavailable("cannot write catalog: " + path);
  file << "gwas_catalog,v1," << catalog.num_snps() << "\n";
  for (const Trait& trait : catalog.traits()) {
    // Rows are written verbatim (no cell quoting), so names must not carry
    // CSV structure.
    if (trait.name.find_first_of(",\"\r\n") != std::string::npos) {
      return Status::InvalidArgument("trait name '" + trait.name + "' contains CSV delimiters");
    }
    file << "trait," << trait.name << "," << Table::FormatDouble(trait.prevalence, 6) << "\n";
  }
  for (const SnpTraitAssociation& assoc : catalog.associations()) {
    file << "assoc," << assoc.snp << "," << assoc.trait << ","
         << Table::FormatDouble(assoc.control_raf, 6) << ","
         << Table::FormatDouble(assoc.odds_ratio, 6) << "\n";
  }
  for (const LdPair& pair : catalog.ld_pairs()) {
    file << "ld," << pair.a << "," << pair.b << "," << Table::FormatDouble(pair.correlation, 6)
         << "\n";
  }
  file.flush();
  if (!file) return Status::DataLoss("catalog write failed: " + path);
  return Status::Ok();
}

Result<GwasCatalog> ParseGwasCatalog(const std::string& content) {
  PPDP_ASSIGN_OR_RETURN(auto rows, ParseCsv(content));
  if (rows.empty()) return Status::InvalidArgument("catalog file is empty");
  const auto& header = rows[0];
  if (header.size() != 3 || header[0] != "gwas_catalog" || header[1] != "v1") {
    return Status::InvalidArgument("catalog header must be gwas_catalog,v1,<num_snps>");
  }
  PPDP_ASSIGN_OR_RETURN(int64_t num_snps, ParseInt(header[2]));
  if (num_snps <= 0 || static_cast<uint64_t>(num_snps) > kMaxCatalogSnps) {
    return Status::InvalidArgument("catalog num_snps " + header[2] + " outside (0, " +
                                   std::to_string(kMaxCatalogSnps) + "]");
  }

  GwasCatalog catalog(static_cast<size_t>(num_snps));
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const std::string where = " (row " + std::to_string(r) + ")";
    if (row.empty() || row[0].empty()) {
      return Status::InvalidArgument("empty catalog row" + where);
    }
    if (row[0] == "trait") {
      if (row.size() != 3) return Status::InvalidArgument("trait rows are trait,name,prev" + where);
      if (row[1].empty()) return Status::InvalidArgument("trait name must be non-empty" + where);
      PPDP_ASSIGN_OR_RETURN(double prevalence, ParseDouble(row[2]));
      if (prevalence <= 0.0 || prevalence >= 1.0) {
        return Status::InvalidArgument("trait prevalence must be in (0, 1)" + where);
      }
      catalog.AddTrait(Trait{row[1], prevalence});
    } else if (row[0] == "assoc") {
      if (row.size() != 5) {
        return Status::InvalidArgument("assoc rows are assoc,snp,trait,raf,odds" + where);
      }
      SnpTraitAssociation assoc;
      PPDP_ASSIGN_OR_RETURN(assoc.snp, ParseIndex(row[1], catalog.num_snps(), "SNP"));
      PPDP_ASSIGN_OR_RETURN(assoc.trait, ParseIndex(row[2], catalog.num_traits(), "trait"));
      PPDP_ASSIGN_OR_RETURN(assoc.control_raf, ParseDouble(row[3]));
      PPDP_ASSIGN_OR_RETURN(assoc.odds_ratio, ParseDouble(row[4]));
      if (assoc.control_raf <= 0.0 || assoc.control_raf >= 1.0) {
        return Status::InvalidArgument("control RAF must be in (0, 1)" + where);
      }
      if (assoc.odds_ratio <= 0.0) {
        return Status::InvalidArgument("odds ratio must be positive" + where);
      }
      catalog.AddAssociation(assoc);
    } else if (row[0] == "ld") {
      if (row.size() != 4) return Status::InvalidArgument("ld rows are ld,a,b,corr" + where);
      LdPair pair;
      PPDP_ASSIGN_OR_RETURN(pair.a, ParseIndex(row[1], catalog.num_snps(), "LD"));
      PPDP_ASSIGN_OR_RETURN(pair.b, ParseIndex(row[2], catalog.num_snps(), "LD"));
      PPDP_ASSIGN_OR_RETURN(pair.correlation, ParseDouble(row[3]));
      if (pair.a == pair.b) {
        return Status::InvalidArgument("LD pair must link distinct loci" + where);
      }
      if (pair.correlation < 0.0 || pair.correlation > 1.0) {
        return Status::InvalidArgument("LD correlation must be in [0, 1]" + where);
      }
      catalog.AddLdPair(pair);
    } else {
      return Status::InvalidArgument("unknown catalog row kind '" + row[0] + "'" + where);
    }
  }
  return catalog;
}

Result<GwasCatalog> LoadGwasCatalog(const std::string& path) {
  // Same CSV I/O fault point as LoadPanel: a drop models an unreadable
  // file and surfaces as a retryable kUnavailable.
  fault::FaultDecision fault_decision = PPDP_FAULT_POINT("io.csv.read", fault::kMaskDrop);
  if (fault_decision.drop()) return fault_decision.AsStatus("io.csv.read");
  std::ifstream file(path);
  if (!file) return Status::Unavailable("cannot read catalog: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseGwasCatalog(buffer.str());
}

}  // namespace ppdp::genomics
