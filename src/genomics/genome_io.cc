#include "genomics/genome_io.h"

#include <cstdlib>

#include "common/csv.h"
#include "common/table.h"
#include "fault/fault.h"

namespace ppdp::genomics {

namespace {

Result<int64_t> ParseInt(const std::string& cell) {
  if (cell.empty()) return Status::InvalidArgument("empty integer cell");
  char* end = nullptr;
  int64_t v = std::strtoll(cell.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + cell + "'");
  }
  return v;
}

}  // namespace

Status SavePanel(const CaseControlPanel& panel, const std::string& path) {
  if (panel.individuals.empty()) return Status::InvalidArgument("empty panel");
  size_t num_traits = panel.individuals[0].traits.size();
  size_t num_snps = panel.individuals[0].genotypes.size();
  std::vector<std::string> columns = {"case"};
  for (size_t t = 0; t < num_traits; ++t) columns.push_back("t" + std::to_string(t));
  for (size_t s = 0; s < num_snps; ++s) columns.push_back("s" + std::to_string(s));
  Table table(columns);
  for (size_t i = 0; i < panel.individuals.size(); ++i) {
    const Individual& person = panel.individuals[i];
    if (person.traits.size() != num_traits || person.genotypes.size() != num_snps) {
      return Status::InvalidArgument("ragged panel");
    }
    std::vector<std::string> row = {panel.is_case[i] ? "1" : "0"};
    for (TraitStatus t : person.traits) {
      row.push_back(t == kUnknownTrait ? "" : std::to_string(static_cast<int>(t)));
    }
    for (Genotype g : person.genotypes) {
      row.push_back(g == kUnknownGenotype ? "" : std::to_string(static_cast<int>(g)));
    }
    table.AddRow(std::move(row));
  }
  return table.WriteCsv(path);
}

Result<CaseControlPanel> LoadPanel(const std::string& path) {
  // Same CSV I/O failure point as graph::LoadGraph: a drop models an
  // unreadable file and surfaces as a retryable kUnavailable.
  fault::FaultDecision fault_decision = PPDP_FAULT_POINT("io.csv.read", fault::kMaskDrop);
  if (fault_decision.drop()) return fault_decision.AsStatus("io.csv.read");
  PPDP_ASSIGN_OR_RETURN(auto rows, ReadCsv(path));
  if (rows.size() < 2) return Status::InvalidArgument("panel file has no data rows");
  const auto& header = rows[0];
  if (header.empty() || header[0] != "case") {
    return Status::InvalidArgument("panel header must start with 'case'");
  }
  size_t num_traits = 0;
  size_t num_snps = 0;
  for (size_t c = 1; c < header.size(); ++c) {
    if (!header[c].empty() && header[c][0] == 't') {
      ++num_traits;
    } else if (!header[c].empty() && header[c][0] == 's') {
      ++num_snps;
    } else {
      return Status::InvalidArgument("unexpected panel column '" + header[c] + "'");
    }
  }

  CaseControlPanel panel;
  for (size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != 1 + num_traits + num_snps) {
      return Status::InvalidArgument("panel row " + std::to_string(r) + " has wrong width");
    }
    PPDP_ASSIGN_OR_RETURN(int64_t is_case, ParseInt(row[0]));
    Individual person;
    person.traits.resize(num_traits, kUnknownTrait);
    for (size_t t = 0; t < num_traits; ++t) {
      if (row[1 + t].empty()) continue;
      PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[1 + t]));
      if (v < 0 || v > 1) return Status::InvalidArgument("trait status out of range");
      person.traits[t] = static_cast<TraitStatus>(v);
    }
    person.genotypes.resize(num_snps, kUnknownGenotype);
    for (size_t s = 0; s < num_snps; ++s) {
      if (row[1 + num_traits + s].empty()) continue;
      PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[1 + num_traits + s]));
      if (v < 0 || v >= kNumGenotypes) return Status::InvalidArgument("genotype out of range");
      person.genotypes[s] = static_cast<Genotype>(v);
    }
    panel.individuals.push_back(std::move(person));
    panel.is_case.push_back(is_case != 0);
  }
  return panel;
}

}  // namespace ppdp::genomics
