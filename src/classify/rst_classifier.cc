#include "classify/rst_classifier.h"

#include "common/logging.h"
#include "rst/information_system.h"
#include "rst/reduct.h"

namespace ppdp::classify {

void RstClassifier::Train(const SocialGraph& g, const std::vector<bool>& known) {
  PPDP_CHECK(known.size() == g.num_nodes());
  std::vector<std::string> names;
  names.reserve(g.num_categories());
  for (const auto& cat : g.categories()) names.push_back(cat.name);
  rst::InformationSystem is(std::move(names), g.num_labels());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u]) continue;
    graph::Label y = g.GetLabel(u);
    PPDP_CHECK(y != graph::kUnknownLabel) << "training node " << u << " has no label";
    std::vector<graph::AttributeValue> row(g.num_categories());
    for (size_t c = 0; c < g.num_categories(); ++c) row[c] = g.Attribute(u, c);
    is.AddObject(std::move(row), y);
  }
  rules_ = rst::RuleSet::Learn(is, rst::GreedyReduct(is));
}

LabelDistribution RstClassifier::Predict(const SocialGraph& g, NodeId u) const {
  PPDP_CHECK(rules_.has_value()) << "Predict before Train";
  std::vector<graph::AttributeValue> row(g.num_categories());
  for (size_t c = 0; c < g.num_categories(); ++c) row[c] = g.Attribute(u, c);
  return rules_->Classify(row);
}

const std::vector<size_t>& RstClassifier::reduct() const {
  PPDP_CHECK(rules_.has_value()) << "reduct() before Train";
  return rules_->reduct();
}

}  // namespace ppdp::classify
