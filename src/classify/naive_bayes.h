#ifndef PPDP_CLASSIFY_NAIVE_BAYES_H_
#define PPDP_CLASSIFY_NAIVE_BAYES_H_

#include <string>
#include <vector>

#include "classify/classifier.h"

namespace ppdp::classify {

/// Categorical Naive Bayes over the published attribute categories with
/// Laplace smoothing; missing attributes are skipped at prediction time
/// (treated as unobserved, not as a value). Matches the attribute-only
/// predictor of Section 4.3.1:
///   argmax_t P(l_t) * Π_c P(x_c | l_t).
class NaiveBayesClassifier : public AttributeClassifier {
 public:
  /// `smoothing` is the Laplace pseudo-count added per (value, label) cell.
  /// With `uniform_prior` the learned class prior is replaced by the uniform
  /// distribution — modeling an attacker who knows the attribute/label
  /// likelihoods (the strategy) but not the population profile (used by the
  /// Fig 4.3 "StrategyOnly" adversary).
  explicit NaiveBayesClassifier(double smoothing = 1.0, bool uniform_prior = false)
      : smoothing_(smoothing), uniform_prior_(uniform_prior) {}

  void Train(const SocialGraph& g, const std::vector<bool>& known) override;
  LabelDistribution Predict(const SocialGraph& g, NodeId u) const override;
  std::string name() const override { return "Bayes"; }

 private:
  double smoothing_;
  bool uniform_prior_ = false;
  int32_t num_labels_ = 0;
  std::vector<double> log_prior_;
  /// log_likelihood_[c][v][y] = log P(value v for category c | label y).
  std::vector<std::vector<std::vector<double>>> log_likelihood_;
};

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_NAIVE_BAYES_H_
