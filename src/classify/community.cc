#include "classify/community.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace ppdp::classify {

std::vector<uint32_t> DetectCommunities(const SocialGraph& g, size_t max_sweeps,
                                        uint64_t seed) {
  std::vector<uint32_t> community(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) community[u] = u;

  Rng rng(seed);
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) order[u] = u;

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    rng.Shuffle(order);
    bool changed = false;
    std::map<uint32_t, size_t> votes;
    for (NodeId u : order) {
      const auto& neighbors = g.Neighbors(u);
      if (neighbors.empty()) continue;
      votes.clear();
      for (NodeId v : neighbors) ++votes[community[v]];
      // Most frequent neighbor community; ties toward the smaller id so the
      // result is deterministic given the visiting order.
      uint32_t best = community[u];
      size_t best_votes = 0;
      for (const auto& [id, count] : votes) {
        if (count > best_votes || (count == best_votes && id < best)) {
          best_votes = count;
          best = id;
        }
      }
      if (best != community[u]) {
        community[u] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return community;
}

size_t NumCommunities(const std::vector<uint32_t>& communities) {
  std::map<uint32_t, size_t> seen;
  for (uint32_t c : communities) ++seen[c];
  return seen.size();
}

std::vector<LabelDistribution> CommunityAttack(const SocialGraph& g,
                                               const std::vector<bool>& known,
                                               const std::vector<uint32_t>& communities) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(communities.size() == g.num_nodes());
  const size_t labels = static_cast<size_t>(g.num_labels());

  // Known-label tallies per community plus the global fallback.
  std::map<uint32_t, std::vector<double>> tallies;
  std::vector<double> global(labels, 1.0);  // +1 smoothing
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u]) continue;
    graph::Label y = g.GetLabel(u);
    if (y == graph::kUnknownLabel) continue;
    auto [it, unused_inserted] = tallies.try_emplace(communities[u],
                                                     std::vector<double>(labels, 0.0));
    it->second[static_cast<size_t>(y)] += 1.0;
    global[static_cast<size_t>(y)] += 1.0;
  }

  std::vector<LabelDistribution> result(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u] && g.GetLabel(u) != graph::kUnknownLabel) {
      result[u].assign(labels, 0.0);
      result[u][static_cast<size_t>(g.GetLabel(u))] = 1.0;
      continue;
    }
    auto it = tallies.find(communities[u]);
    result[u] = Normalized(it == tallies.end() ? global : it->second);
  }
  return result;
}

}  // namespace ppdp::classify
