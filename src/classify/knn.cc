#include "classify/knn.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::classify {

void KnnClassifier::Train(const SocialGraph& g, const std::vector<bool>& known) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(k_ >= 1);
  num_labels_ = g.num_labels();
  train_rows_.clear();
  train_labels_.clear();
  prior_.assign(static_cast<size_t>(num_labels_), 1.0);  // Laplace prior
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u]) continue;
    graph::Label y = g.GetLabel(u);
    PPDP_CHECK(y != graph::kUnknownLabel) << "training node " << u << " has no label";
    std::vector<graph::AttributeValue> row(g.num_categories());
    for (size_t c = 0; c < g.num_categories(); ++c) row[c] = g.Attribute(u, c);
    train_rows_.push_back(std::move(row));
    train_labels_.push_back(y);
    prior_[static_cast<size_t>(y)] += 1.0;
  }
  NormalizeInPlace(prior_);
}

LabelDistribution KnnClassifier::Predict(const SocialGraph& g, NodeId u) const {
  PPDP_CHECK(num_labels_ > 0) << "Predict before Train";
  if (train_rows_.empty()) return prior_;

  std::vector<graph::AttributeValue> query(g.num_categories());
  for (size_t c = 0; c < g.num_categories(); ++c) query[c] = g.Attribute(u, c);

  std::vector<std::pair<double, size_t>> distances;
  distances.reserve(train_rows_.size());
  for (size_t i = 0; i < train_rows_.size(); ++i) {
    double d = 0.0;
    for (size_t c = 0; c < query.size(); ++c) {
      graph::AttributeValue a = query[c];
      graph::AttributeValue b = train_rows_[i][c];
      if (a == graph::kMissingAttribute && b == graph::kMissingAttribute) continue;
      if (a == graph::kMissingAttribute || b == graph::kMissingAttribute) {
        d += 0.5;
      } else if (a != b) {
        d += 1.0;
      }
    }
    distances.emplace_back(d, i);
  }

  size_t k = std::min(k_, distances.size());
  std::nth_element(distances.begin(), distances.begin() + static_cast<ptrdiff_t>(k - 1),
                   distances.end());
  double kth = distances[k - 1].first;

  LabelDistribution votes(static_cast<size_t>(num_labels_), 0.0);
  // All neighbors at distance <= kth vote (ties at the boundary included).
  for (const auto& [d, i] : distances) {
    if (d <= kth) votes[static_cast<size_t>(train_labels_[i])] += 1.0;
  }
  NormalizeInPlace(votes);
  return votes;
}

}  // namespace ppdp::classify
