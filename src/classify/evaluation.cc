#include "classify/evaluation.h"

#include <algorithm>
#include <cmath>

#include "classify/gibbs.h"
#include "classify/knn.h"
#include "classify/naive_bayes.h"
#include "classify/relational.h"
#include "classify/rst_classifier.h"
#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::classify {

const char* AttackModelName(AttackModel model) {
  switch (model) {
    case AttackModel::kAttrOnly:
      return "AttrOnly";
    case AttackModel::kLinkOnly:
      return "LinkOnly";
    case AttackModel::kCollective:
      return "CC";
    case AttackModel::kGibbs:
      return "Gibbs";
  }
  return "?";
}

const char* LocalModelName(LocalModel model) {
  switch (model) {
    case LocalModel::kNaiveBayes:
      return "Bayes";
    case LocalModel::kKnn:
      return "KNN";
    case LocalModel::kRst:
      return "RST";
  }
  return "?";
}

std::unique_ptr<AttributeClassifier> MakeLocalClassifier(LocalModel model) {
  switch (model) {
    case LocalModel::kNaiveBayes:
      return std::make_unique<NaiveBayesClassifier>();
    case LocalModel::kKnn:
      return std::make_unique<KnnClassifier>();
    case LocalModel::kRst:
      return std::make_unique<RstClassifier>();
  }
  return nullptr;
}

AttackOutcome RunAttack(const SocialGraph& g, const std::vector<bool>& known, AttackModel model,
                        AttributeClassifier& local, const CollectiveConfig& config) {
  PPDP_CHECK(known.size() == g.num_nodes());
  AttackOutcome outcome;
  switch (model) {
    case AttackModel::kAttrOnly: {
      local.Train(g, known);
      outcome.distributions = BootstrapDistributions(g, known, local);
      break;
    }
    case AttackModel::kLinkOnly: {
      local.Train(g, known);
      outcome.distributions = LinkOnlyInference(g, known, local, /*passes=*/1);
      break;
    }
    case AttackModel::kCollective: {
      CollectiveResult cc = CollectiveInference(g, known, local, config);
      outcome.distributions = std::move(cc.distributions);
      break;
    }
    case AttackModel::kGibbs: {
      GibbsConfig gibbs;
      gibbs.alpha = config.alpha;
      gibbs.beta = config.beta;
      CollectiveResult cc = GibbsCollectiveInference(g, known, local, gibbs);
      outcome.distributions = std::move(cc.distributions);
      break;
    }
  }
  outcome.accuracy = Accuracy(g, known, outcome.distributions);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u] && g.GetLabel(u) != graph::kUnknownLabel) ++outcome.evaluated;
  }
  return outcome;
}

std::vector<bool> SampleKnownMask(const SocialGraph& g, double known_fraction, Rng& rng) {
  PPDP_CHECK(known_fraction >= 0.0 && known_fraction <= 1.0);
  std::vector<bool> known(g.num_nodes(), false);
  size_t target = static_cast<size_t>(known_fraction * static_cast<double>(g.num_nodes()));
  for (size_t idx : rng.SampleWithoutReplacement(g.num_nodes(), target)) known[idx] = true;
  return known;
}

double Accuracy(const SocialGraph& g, const std::vector<bool>& known,
                const std::vector<LabelDistribution>& distributions) {
  PPDP_CHECK(distributions.size() == g.num_nodes());
  size_t correct = 0;
  size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) continue;
    graph::Label truth = g.GetLabel(u);
    if (truth == graph::kUnknownLabel) continue;
    ++total;
    if (static_cast<graph::Label>(ArgMax(distributions[u])) == truth) ++correct;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(correct) / static_cast<double>(total);
}

double ConfusionMatrix::Accuracy() const {
  if (total == 0) return 0.0;
  size_t correct = 0;
  for (size_t y = 0; y < counts.size(); ++y) correct += counts[y][y];
  return static_cast<double>(correct) / static_cast<double>(total);
}

double ConfusionMatrix::Recall(graph::Label label) const {
  PPDP_CHECK(label >= 0 && static_cast<size_t>(label) < counts.size());
  size_t row_total = 0;
  for (size_t p = 0; p < counts.size(); ++p) row_total += counts[static_cast<size_t>(label)][p];
  if (row_total == 0) return 0.0;
  return static_cast<double>(counts[static_cast<size_t>(label)][static_cast<size_t>(label)]) /
         static_cast<double>(row_total);
}

double ConfusionMatrix::Precision(graph::Label label) const {
  PPDP_CHECK(label >= 0 && static_cast<size_t>(label) < counts.size());
  size_t column_total = 0;
  for (size_t y = 0; y < counts.size(); ++y) {
    column_total += counts[y][static_cast<size_t>(label)];
  }
  if (column_total == 0) return 0.0;
  return static_cast<double>(counts[static_cast<size_t>(label)][static_cast<size_t>(label)]) /
         static_cast<double>(column_total);
}

double ConfusionMatrix::MacroRecall() const {
  double sum = 0.0;
  size_t classes = 0;
  for (size_t y = 0; y < counts.size(); ++y) {
    size_t row_total = 0;
    for (size_t p = 0; p < counts.size(); ++p) row_total += counts[y][p];
    if (row_total == 0) continue;
    sum += static_cast<double>(counts[y][y]) / static_cast<double>(row_total);
    ++classes;
  }
  return classes == 0 ? 0.0 : sum / static_cast<double>(classes);
}

ConfusionMatrix BuildConfusionMatrix(const SocialGraph& g, const std::vector<bool>& known,
                                     const std::vector<LabelDistribution>& distributions) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(distributions.size() == g.num_nodes());
  ConfusionMatrix matrix;
  size_t labels = static_cast<size_t>(g.num_labels());
  matrix.counts.assign(labels, std::vector<size_t>(labels, 0));
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) continue;
    graph::Label truth = g.GetLabel(u);
    if (truth == graph::kUnknownLabel) continue;
    size_t predicted = ArgMax(distributions[u]);
    ++matrix.counts[static_cast<size_t>(truth)][predicted];
    ++matrix.total;
  }
  return matrix;
}

RepeatedAttackResult RepeatedAttack(const SocialGraph& g, double known_fraction, size_t repeats,
                                    AttackModel model, LocalModel local_model,
                                    const CollectiveConfig& config, uint64_t seed) {
  PPDP_CHECK(repeats >= 1);
  RepeatedAttackResult result;
  Rng rng(seed);
  for (size_t r = 0; r < repeats; ++r) {
    std::vector<bool> known = SampleKnownMask(g, known_fraction, rng);
    auto local = MakeLocalClassifier(local_model);
    result.accuracies.push_back(RunAttack(g, known, model, *local, config).accuracy);
  }
  result.mean = Mean(result.accuracies);
  result.stddev = std::sqrt(Variance(result.accuracies));
  return result;
}

AlphaBetaChoice TuneAlphaBeta(const SocialGraph& g, const std::vector<bool>& known,
                              LocalModel local_model, const std::vector<double>& grid,
                              double validation_fraction, uint64_t seed) {
  PPDP_CHECK(!grid.empty()) << "alpha grid is empty";
  PPDP_CHECK(validation_fraction > 0.0 && validation_fraction < 1.0);
  PPDP_CHECK(known.size() == g.num_nodes());

  // Carve a validation set out of the *known* nodes: their labels are
  // hidden during tuning and scored against, so the true test set (the
  // attacker's actual targets) is never touched.
  std::vector<NodeId> known_nodes;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u] && g.GetLabel(u) != graph::kUnknownLabel) known_nodes.push_back(u);
  }
  PPDP_CHECK(known_nodes.size() >= 4) << "too few known labels to tune on";
  Rng rng(seed);
  rng.Shuffle(known_nodes);
  size_t validation_size = std::max<size_t>(
      1, static_cast<size_t>(validation_fraction * static_cast<double>(known_nodes.size())));

  std::vector<bool> tuning_known = known;
  std::vector<bool> is_validation(g.num_nodes(), false);
  for (size_t i = 0; i < validation_size; ++i) {
    tuning_known[known_nodes[i]] = false;
    is_validation[known_nodes[i]] = true;
  }

  AlphaBetaChoice best;
  best.validation_accuracy = -1.0;
  for (double alpha : grid) {
    PPDP_CHECK(alpha >= 0.0 && alpha <= 1.0) << "alpha out of [0,1]: " << alpha;
    CollectiveConfig config;
    config.alpha = alpha;
    config.beta = 1.0 - alpha;
    auto local = MakeLocalClassifier(local_model);
    auto outcome = RunAttack(g, tuning_known, AttackModel::kCollective, *local, config);
    // Score only the validation nodes.
    size_t correct = 0, total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!is_validation[u]) continue;
      ++total;
      if (static_cast<graph::Label>(ArgMax(outcome.distributions[u])) == g.GetLabel(u)) {
        ++correct;
      }
    }
    double accuracy =
        total == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(total);
    if (accuracy > best.validation_accuracy) {
      best.validation_accuracy = accuracy;
      best.alpha = alpha;
      best.beta = 1.0 - alpha;
    }
  }
  return best;
}

}  // namespace ppdp::classify
