#ifndef PPDP_CLASSIFY_COMMUNITY_H_
#define PPDP_CLASSIFY_COMMUNITY_H_

#include <cstdint>
#include <vector>

#include "classify/classifier.h"

namespace ppdp::classify {

/// The community-based inference family from the related work (Section 2.1,
/// [5] Mislove et al.): detect communities, then exploit the assumption that
/// "users in a community are more likely to share common attributes".

/// Asynchronous label-propagation community detection: every node adopts
/// the most frequent community among its neighbors until a sweep changes
/// nothing (or max_sweeps). Returns a community id per node (isolated nodes
/// keep their own singleton community). Deterministic given the seed, which
/// only randomizes the node visiting order.
std::vector<uint32_t> DetectCommunities(const SocialGraph& g, size_t max_sweeps, uint64_t seed);

/// Number of distinct community ids in an assignment.
size_t NumCommunities(const std::vector<uint32_t>& communities);

/// The community-majority attack: each hidden node's label distribution is
/// the empirical distribution of known labels inside its community;
/// communities without known labels fall back to the global known-label
/// distribution. Known nodes come back one-hot.
std::vector<LabelDistribution> CommunityAttack(const SocialGraph& g,
                                               const std::vector<bool>& known,
                                               const std::vector<uint32_t>& communities);

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_COMMUNITY_H_
