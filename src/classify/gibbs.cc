#include "classify/gibbs.h"

#include <cmath>
#include <cstdint>

#include "classify/relational.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "exec/parallel.h"
#include "fault/fault.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::classify {

Status GibbsConfig::Validate() const {
  if (!(std::isfinite(alpha) && std::isfinite(beta)) || alpha < 0.0 || beta < 0.0) {
    return Status::InvalidArgument("alpha and beta must be finite and non-negative");
  }
  if (alpha + beta <= 0.0) {
    return Status::InvalidArgument("alpha + beta must be positive");
  }
  if (samples == 0) return Status::InvalidArgument("samples must be >= 1");
  if (chains == 0) return Status::InvalidArgument("chains must be >= 1");
  return exec::ExecConfig{threads}.Validate();
}

GibbsSampler::GibbsSampler(const SocialGraph& g, const std::vector<bool>& known,
                           AttributeClassifier& local, const GibbsConfig& config)
    : g_(g), known_(known), config_(config) {
  PPDP_CHECK(known_.size() == g_.num_nodes());
  Status valid = config_.Validate();
  PPDP_CHECK(valid.ok()) << valid.ToString();
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("classify.gibbs.runs");
  runs.Increment();

  local.Train(g_, known_);
  labels_ = static_cast<size_t>(g_.num_labels());
  total_sweeps_ = config_.burn_in + config_.samples;

  // Fixed attribute posteriors, shared read-only by every chain.
  attribute_posterior_.resize(g_.num_nodes());
  exec::ParallelFor(
      0, g_.num_nodes(), /*grain=*/64,
      [&](size_t u) {
        if (!known_[u]) attribute_posterior_[u] = local.Predict(g_, static_cast<NodeId>(u));
      },
      exec::ExecConfig{config_.threads});

  // One chain = the classic single-site sweep with its own hard-label state
  // and its own index-addressed RNG stream. Chains never share mutable
  // state, so running them concurrently cannot change any chain's result.
  const Rng root(config_.seed);
  chains_.reserve(config_.chains);
  for (size_t c = 0; c < config_.chains; ++c) {
    chains_.emplace_back(root.Split(c));
    Chain& chain = chains_.back();
    chain.index = c;
    chain.tallies.assign(g_.num_nodes(), std::vector<double>(labels_, 0.0));
    chain.state.assign(g_.num_nodes(), 0);
    for (NodeId u = 0; u < g_.num_nodes(); ++u) {
      if (known_[u]) {
        graph::Label y = g_.GetLabel(u);
        PPDP_CHECK(y != graph::kUnknownLabel) << "known node " << u << " has no label";
        chain.state[u] = y;
      } else {
        chain.state[u] = static_cast<graph::Label>(chain.rng.Categorical(attribute_posterior_[u]));
      }
    }
  }
}

void GibbsSampler::SweepChain(Chain& chain) {
  static obs::Counter& sweeps = obs::MetricsRegistry::Global().counter("classify.gibbs.sweeps");
  const double norm = config_.alpha + config_.beta;

  // Weighted hard-label vote of u's neighborhood under the current state.
  auto link_vote = [&](NodeId u) {
    LabelDistribution vote(labels_, 0.0);
    double total = 0.0;
    for (NodeId v : g_.Neighbors(u)) {
      double w = g_.LinkWeight(u, v);
      if (w <= 0.0) continue;
      total += w;
      vote[static_cast<size_t>(chain.state[v])] += w;
    }
    if (total <= 0.0) return LabelDistribution(labels_, 1.0 / static_cast<double>(labels_));
    for (double& p : vote) p /= total;
    return vote;
  };

  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    if (known_[u]) continue;
    LabelDistribution vote = link_vote(u);
    LabelDistribution conditional(labels_);
    for (size_t y = 0; y < labels_; ++y) {
      conditional[y] =
          (config_.alpha * attribute_posterior_[u][y] + config_.beta * vote[y]) / norm;
    }
    chain.state[u] = static_cast<graph::Label>(chain.rng.Categorical(conditional));
  }
  if (chain.sweeps_done >= config_.burn_in) {
    for (NodeId u = 0; u < g_.num_nodes(); ++u) {
      chain.tallies[u][static_cast<size_t>(chain.state[u])] += 1.0;
    }
  }
  ++chain.sweeps_done;
  sweeps.Increment();
}

Status GibbsSampler::Run() {
  static obs::Histogram& chain_seconds =
      obs::MetricsRegistry::Global().histogram("classify.gibbs.chain_seconds");
  std::vector<uint8_t> interrupted(chains_.size(), 0);
  exec::ParallelFor(
      0, chains_.size(), /*grain=*/1,
      [&](size_t c) {
        Chain& chain = chains_[c];
        if (chain.sweeps_done >= total_sweeps_) return;
        double chain_start = obs::MonotonicSeconds();
        while (chain.sweeps_done < total_sweeps_) {
          // Faults interrupt *between* sweeps: the sweep is the atomic
          // unit, so an interrupted chain is always checkpoint-consistent.
          fault::FaultDecision fault_decision =
              PPDP_FAULT_POINT("classify.gibbs.sweep", fault::kMaskDrop);
          if (fault_decision.drop()) {
            interrupted[c] = 1;
            break;
          }
          SweepChain(chain);
        }
        chain_seconds.Observe(obs::MonotonicSeconds() - chain_start);
      },
      exec::ExecConfig{config_.threads});
  size_t num_interrupted = 0;
  for (uint8_t i : interrupted) num_interrupted += i;
  if (num_interrupted > 0) {
    return Status::Unavailable("injected fault interrupted " + std::to_string(num_interrupted) +
                               " Gibbs chain(s); progress retained");
  }
  return Status::Ok();
}

bool GibbsSampler::Finished() const {
  for (const Chain& chain : chains_) {
    if (chain.sweeps_done < total_sweeps_) return false;
  }
  return true;
}

size_t GibbsSampler::SweepsDone(size_t chain) const {
  PPDP_CHECK(chain < chains_.size());
  return chains_[chain].sweeps_done;
}

std::vector<GibbsChainCheckpoint> GibbsSampler::Snapshot() const {
  std::vector<GibbsChainCheckpoint> checkpoints;
  checkpoints.reserve(chains_.size());
  for (const Chain& chain : chains_) {
    GibbsChainCheckpoint checkpoint;
    checkpoint.chain = chain.index;
    checkpoint.sweeps_done = chain.sweeps_done;
    checkpoint.state = chain.state;
    checkpoint.tallies = chain.tallies;
    checkpoint.rng_state = chain.rng.SaveState();
    checkpoints.push_back(std::move(checkpoint));
  }
  return checkpoints;
}

Status GibbsSampler::Restore(const std::vector<GibbsChainCheckpoint>& checkpoints) {
  if (checkpoints.size() != chains_.size()) {
    return Status::InvalidArgument("Gibbs checkpoint chain count mismatch");
  }
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    const GibbsChainCheckpoint& checkpoint = checkpoints[c];
    if (checkpoint.chain != c || checkpoint.state.size() != g_.num_nodes() ||
        checkpoint.tallies.size() != g_.num_nodes() || checkpoint.sweeps_done > total_sweeps_) {
      return Status::InvalidArgument("Gibbs checkpoint shape mismatch at chain " +
                                     std::to_string(c));
    }
  }
  for (size_t c = 0; c < checkpoints.size(); ++c) {
    const GibbsChainCheckpoint& checkpoint = checkpoints[c];
    PPDP_RETURN_IF_ERROR(
        chains_[c].rng.LoadState(checkpoint.rng_state).Annotate("GibbsSampler::Restore"));
    chains_[c].sweeps_done = checkpoint.sweeps_done;
    chains_[c].state = checkpoint.state;
    chains_[c].tallies = checkpoint.tallies;
  }
  return Status::Ok();
}

CollectiveResult GibbsSampler::Collect() const {
  PPDP_CHECK(Finished()) << "Collect() before every chain finished its sweeps";
  // Pool the chains in chain order (deterministic fold).
  std::vector<std::vector<double>> tallies(g_.num_nodes(), std::vector<double>(labels_, 0.0));
  for (const Chain& chain : chains_) {
    for (NodeId u = 0; u < g_.num_nodes(); ++u) {
      for (size_t y = 0; y < labels_; ++y) tallies[u][y] += chain.tallies[u][y];
    }
  }
  CollectiveResult result;
  result.iterations = total_sweeps_;
  result.converged = true;  // fixed-length chains by construction
  result.distributions.resize(g_.num_nodes());
  for (NodeId u = 0; u < g_.num_nodes(); ++u) {
    if (known_[u]) {
      result.distributions[u].assign(labels_, 0.0);
      result.distributions[u][static_cast<size_t>(g_.GetLabel(u))] = 1.0;
    } else {
      result.distributions[u] = Normalized(tallies[u]);
    }
  }
  return result;
}

CollectiveResult GibbsCollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                          AttributeClassifier& local,
                                          const GibbsConfig& config) {
  obs::TraceSpan span("classify.gibbs");
  GibbsSampler sampler(g, known, local, config);
  auto total_done = [&] {
    size_t done = 0;
    for (size_t c = 0; c < config.chains; ++c) done += sampler.SweepsDone(c);
    return done;
  };
  // Interrupted chains keep their progress; re-running resumes them in
  // place. Only *stalled* re-runs (zero sweeps advanced) count toward the
  // cap, which turns a rate-1.0 plan into a loud failure instead of a hang.
  size_t stalled_runs = 0;
  size_t last_progress = total_done();
  while (!sampler.Finished()) {
    Status ran = sampler.Run();
    size_t done = total_done();
    if (done > last_progress) {
      last_progress = done;
      stalled_runs = 0;
    } else {
      PPDP_CHECK(++stalled_runs < 100)
          << "Gibbs made no progress across " << stalled_runs << " runs: " << ran.ToString();
    }
  }
  PPDP_LOG(DEBUG) << "Gibbs chains finished" << obs::Field("chains", config.chains)
                  << obs::Field("sweeps_per_chain", config.burn_in + config.samples)
                  << obs::Field("burn_in", config.burn_in) << obs::Field("nodes", g.num_nodes())
                  << obs::Field("seconds", span.ElapsedSeconds());
  return sampler.Collect();
}

}  // namespace ppdp::classify
