#include "classify/gibbs.h"

#include "classify/relational.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::classify {

CollectiveResult GibbsCollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                          AttributeClassifier& local,
                                          const GibbsConfig& config) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(config.alpha >= 0.0 && config.beta >= 0.0 && config.alpha + config.beta > 0.0);
  PPDP_CHECK(config.samples >= 1);
  obs::TraceSpan span("classify.gibbs");
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("classify.gibbs.runs");
  static obs::Counter& sweeps = obs::MetricsRegistry::Global().counter("classify.gibbs.sweeps");
  static obs::Histogram& sweep_seconds =
      obs::MetricsRegistry::Global().histogram("classify.gibbs.sweep_seconds");
  runs.Increment();

  local.Train(g, known);
  Rng rng(config.seed);
  const size_t labels = static_cast<size_t>(g.num_labels());
  const double norm = config.alpha + config.beta;

  // Fixed attribute posteriors; current hard assignment per node.
  std::vector<LabelDistribution> attribute_posterior(g.num_nodes());
  std::vector<graph::Label> state(g.num_nodes(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) {
      graph::Label y = g.GetLabel(u);
      PPDP_CHECK(y != graph::kUnknownLabel) << "known node " << u << " has no label";
      state[u] = y;
    } else {
      attribute_posterior[u] = local.Predict(g, u);
      state[u] = static_cast<graph::Label>(rng.Categorical(attribute_posterior[u]));
    }
  }

  // Weighted hard-label vote of u's neighborhood under the current state.
  auto link_vote = [&](NodeId u) {
    LabelDistribution vote(labels, 0.0);
    double total = 0.0;
    for (NodeId v : g.Neighbors(u)) {
      double w = g.LinkWeight(u, v);
      if (w <= 0.0) continue;
      total += w;
      vote[static_cast<size_t>(state[v])] += w;
    }
    if (total <= 0.0) return LabelDistribution(labels, 1.0 / static_cast<double>(labels));
    for (double& p : vote) p /= total;
    return vote;
  };

  std::vector<std::vector<double>> tallies(g.num_nodes(), std::vector<double>(labels, 0.0));
  const size_t total_sweeps = config.burn_in + config.samples;
  for (size_t sweep = 0; sweep < total_sweeps; ++sweep) {
    double sweep_start = obs::MonotonicSeconds();
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (known[u]) continue;
      LabelDistribution vote = link_vote(u);
      LabelDistribution conditional(labels);
      for (size_t y = 0; y < labels; ++y) {
        conditional[y] = (config.alpha * attribute_posterior[u][y] + config.beta * vote[y]) / norm;
      }
      state[u] = static_cast<graph::Label>(rng.Categorical(conditional));
    }
    if (sweep >= config.burn_in) {
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        tallies[u][static_cast<size_t>(state[u])] += 1.0;
      }
    }
    sweeps.Increment();
    sweep_seconds.Observe(obs::MonotonicSeconds() - sweep_start);
  }
  PPDP_LOG(DEBUG) << "Gibbs chain finished" << obs::Field("sweeps", total_sweeps)
                  << obs::Field("burn_in", config.burn_in) << obs::Field("nodes", g.num_nodes())
                  << obs::Field("seconds", span.ElapsedSeconds());

  CollectiveResult result;
  result.iterations = total_sweeps;
  result.converged = true;  // fixed-length chain by construction
  result.distributions.resize(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) {
      result.distributions[u].assign(labels, 0.0);
      result.distributions[u][static_cast<size_t>(g.GetLabel(u))] = 1.0;
    } else {
      result.distributions[u] = Normalized(tallies[u]);
    }
  }
  return result;
}

}  // namespace ppdp::classify
