#include "classify/gibbs.h"

#include <cmath>

#include "classify/relational.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "exec/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::classify {

Status GibbsConfig::Validate() const {
  if (!(std::isfinite(alpha) && std::isfinite(beta)) || alpha < 0.0 || beta < 0.0) {
    return Status::InvalidArgument("alpha and beta must be finite and non-negative");
  }
  if (alpha + beta <= 0.0) {
    return Status::InvalidArgument("alpha + beta must be positive");
  }
  if (samples == 0) return Status::InvalidArgument("samples must be >= 1");
  if (chains == 0) return Status::InvalidArgument("chains must be >= 1");
  return exec::ExecConfig{threads}.Validate();
}

CollectiveResult GibbsCollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                          AttributeClassifier& local,
                                          const GibbsConfig& config) {
  PPDP_CHECK(known.size() == g.num_nodes());
  Status valid = config.Validate();
  PPDP_CHECK(valid.ok()) << valid.ToString();
  obs::TraceSpan span("classify.gibbs");
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("classify.gibbs.runs");
  static obs::Counter& sweeps = obs::MetricsRegistry::Global().counter("classify.gibbs.sweeps");
  static obs::Histogram& chain_seconds =
      obs::MetricsRegistry::Global().histogram("classify.gibbs.chain_seconds");
  runs.Increment();

  local.Train(g, known);
  const size_t labels = static_cast<size_t>(g.num_labels());
  const double norm = config.alpha + config.beta;
  const size_t total_sweeps = config.burn_in + config.samples;

  // Fixed attribute posteriors, shared read-only by every chain.
  std::vector<LabelDistribution> attribute_posterior(g.num_nodes());
  exec::ParallelFor(
      0, g.num_nodes(), /*grain=*/64,
      [&](size_t u) {
        if (!known[u]) attribute_posterior[u] = local.Predict(g, static_cast<NodeId>(u));
      },
      exec::ExecConfig{config.threads});

  // One chain = the classic single-site sweep with its own hard-label state
  // and its own index-addressed RNG stream. Chains never share mutable
  // state, so running them concurrently cannot change any chain's result.
  const Rng root(config.seed);
  std::vector<std::vector<std::vector<double>>> chain_tallies(
      config.chains,
      std::vector<std::vector<double>>(g.num_nodes(), std::vector<double>(labels, 0.0)));
  exec::ParallelFor(
      0, config.chains, /*grain=*/1,
      [&](size_t chain) {
        double chain_start = obs::MonotonicSeconds();
        Rng rng = root.Split(chain);
        auto& tallies = chain_tallies[chain];

        std::vector<graph::Label> state(g.num_nodes(), 0);
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          if (known[u]) {
            graph::Label y = g.GetLabel(u);
            PPDP_CHECK(y != graph::kUnknownLabel) << "known node " << u << " has no label";
            state[u] = y;
          } else {
            state[u] = static_cast<graph::Label>(rng.Categorical(attribute_posterior[u]));
          }
        }

        // Weighted hard-label vote of u's neighborhood under the current
        // state.
        auto link_vote = [&](NodeId u) {
          LabelDistribution vote(labels, 0.0);
          double total = 0.0;
          for (NodeId v : g.Neighbors(u)) {
            double w = g.LinkWeight(u, v);
            if (w <= 0.0) continue;
            total += w;
            vote[static_cast<size_t>(state[v])] += w;
          }
          if (total <= 0.0) return LabelDistribution(labels, 1.0 / static_cast<double>(labels));
          for (double& p : vote) p /= total;
          return vote;
        };

        for (size_t sweep = 0; sweep < total_sweeps; ++sweep) {
          for (NodeId u = 0; u < g.num_nodes(); ++u) {
            if (known[u]) continue;
            LabelDistribution vote = link_vote(u);
            LabelDistribution conditional(labels);
            for (size_t y = 0; y < labels; ++y) {
              conditional[y] =
                  (config.alpha * attribute_posterior[u][y] + config.beta * vote[y]) / norm;
            }
            state[u] = static_cast<graph::Label>(rng.Categorical(conditional));
          }
          if (sweep >= config.burn_in) {
            for (NodeId u = 0; u < g.num_nodes(); ++u) {
              tallies[u][static_cast<size_t>(state[u])] += 1.0;
            }
          }
          sweeps.Increment();
        }
        chain_seconds.Observe(obs::MonotonicSeconds() - chain_start);
      },
      exec::ExecConfig{config.threads});

  // Pool the chains in chain order (deterministic fold).
  std::vector<std::vector<double>> tallies(g.num_nodes(), std::vector<double>(labels, 0.0));
  for (const auto& per_chain : chain_tallies) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      for (size_t y = 0; y < labels; ++y) tallies[u][y] += per_chain[u][y];
    }
  }
  PPDP_LOG(DEBUG) << "Gibbs chains finished" << obs::Field("chains", config.chains)
                  << obs::Field("sweeps_per_chain", total_sweeps)
                  << obs::Field("burn_in", config.burn_in) << obs::Field("nodes", g.num_nodes())
                  << obs::Field("seconds", span.ElapsedSeconds());

  CollectiveResult result;
  result.iterations = total_sweeps;
  result.converged = true;  // fixed-length chains by construction
  result.distributions.resize(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (known[u]) {
      result.distributions[u].assign(labels, 0.0);
      result.distributions[u][static_cast<size_t>(g.GetLabel(u))] = 1.0;
    } else {
      result.distributions[u] = Normalized(tallies[u]);
    }
  }
  return result;
}

}  // namespace ppdp::classify
