#ifndef PPDP_CLASSIFY_RELATIONAL_H_
#define PPDP_CLASSIFY_RELATIONAL_H_

#include <vector>

#include "classify/classifier.h"

namespace ppdp::classify {

/// One weighted-vote relational-neighbor (wvRN) estimate for node u
/// (Equation 4.3): the attribute-overlap-weighted average of the neighbors'
/// current label distributions,
///   P(l_t | N_i) = Σ_j P(l_t^j) · W_{i,j} / Σ_k W_{i,k}.
/// Falls back to `current[u]` when u has no neighbors or all weights vanish.
LabelDistribution RelationalPredict(const SocialGraph& g, NodeId u,
                                    const std::vector<LabelDistribution>& current);

/// The LinkOnly attack model of Section 3.7.2: bootstrap the unknown nodes'
/// distributions with the local attribute classifier (required because few
/// unknown nodes have labeled neighbors), then run `passes` rounds of
/// relational refinement over the unknown nodes. Known nodes keep their
/// one-hot true label throughout. Returns one distribution per node.
std::vector<LabelDistribution> LinkOnlyInference(const SocialGraph& g,
                                                 const std::vector<bool>& known,
                                                 const AttributeClassifier& local,
                                                 size_t passes = 1);

/// Builds the initial per-node distributions: one-hot for known nodes,
/// local-classifier posterior for unknown nodes. `threads` follows the exec
/// convention (0 = all cores, 1 = serial); the result is identical at every
/// setting.
std::vector<LabelDistribution> BootstrapDistributions(const SocialGraph& g,
                                                      const std::vector<bool>& known,
                                                      const AttributeClassifier& local,
                                                      int threads = 1);

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_RELATIONAL_H_
