#include "classify/relational.h"

#include "common/logging.h"
#include "common/math_util.h"
#include "exec/parallel.h"

namespace ppdp::classify {

LabelDistribution RelationalPredict(const SocialGraph& g, NodeId u,
                                    const std::vector<LabelDistribution>& current) {
  PPDP_CHECK(current.size() == g.num_nodes());
  const size_t labels = static_cast<size_t>(g.num_labels());
  const auto& neighbors = g.Neighbors(u);
  if (neighbors.empty()) return current[u];

  LabelDistribution combined(labels, 0.0);
  double weight_total = 0.0;
  for (NodeId v : neighbors) {
    double w = g.LinkWeight(u, v);
    if (w <= 0.0) continue;
    weight_total += w;
    for (size_t y = 0; y < labels; ++y) combined[y] += w * current[v][y];
  }
  if (weight_total <= 0.0) return current[u];
  for (double& p : combined) p /= weight_total;
  return combined;
}

std::vector<LabelDistribution> BootstrapDistributions(const SocialGraph& g,
                                                      const std::vector<bool>& known,
                                                      const AttributeClassifier& local,
                                                      int threads) {
  PPDP_CHECK(known.size() == g.num_nodes());
  const size_t labels = static_cast<size_t>(g.num_labels());
  std::vector<LabelDistribution> dists(g.num_nodes());
  // Pure per-node fan-out: each slot is written exactly once from a const
  // classifier, so the bootstrap is thread-count-invariant.
  exec::ParallelFor(
      0, g.num_nodes(), /*grain=*/64,
      [&](size_t u) {
        if (known[u]) {
          graph::Label y = g.GetLabel(static_cast<NodeId>(u));
          PPDP_CHECK(y != graph::kUnknownLabel) << "known node " << u << " has no label";
          dists[u].assign(labels, 0.0);
          dists[u][static_cast<size_t>(y)] = 1.0;
        } else {
          dists[u] = local.Predict(g, static_cast<NodeId>(u));
        }
      },
      exec::ExecConfig{threads});
  return dists;
}

std::vector<LabelDistribution> LinkOnlyInference(const SocialGraph& g,
                                                 const std::vector<bool>& known,
                                                 const AttributeClassifier& local,
                                                 size_t passes) {
  std::vector<LabelDistribution> dists = BootstrapDistributions(g, known, local);
  for (size_t pass = 0; pass < passes; ++pass) {
    std::vector<LabelDistribution> next = dists;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (known[u]) continue;
      next[u] = RelationalPredict(g, u, dists);
    }
    dists = std::move(next);
  }
  return dists;
}

}  // namespace ppdp::classify
