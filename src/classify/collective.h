#ifndef PPDP_CLASSIFY_COLLECTIVE_H_
#define PPDP_CLASSIFY_COLLECTIVE_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "common/status.h"

namespace ppdp::classify {

/// Parameters of the collective-inference attack (Algorithm 1 / Eq. 3.5).
struct CollectiveConfig {
  double alpha = 0.5;            ///< weight of the attribute classifier P_A
  double beta = 0.5;             ///< weight of the link classifier P_L
  size_t max_iterations = 10;    ///< ICA refinement rounds
  double convergence_tol = 1e-4; ///< stop when max per-node L1 change drops below
  int threads = 0;               ///< exec convention: 0 = all cores, 1 = serial

  /// Rejects non-finite or negative α/β, α = β = 0, zero max_iterations,
  /// a negative tolerance, and a negative thread count. Called at every
  /// inference entry point so misconfiguration surfaces as a non-OK Status
  /// instead of silent garbage.
  Status Validate() const;
};

/// Output of the collective attack.
struct CollectiveResult {
  std::vector<LabelDistribution> distributions;  ///< per node (known = one-hot)
  size_t iterations = 0;                          ///< refinement rounds executed
  bool converged = false;
};

/// Iterative Classification Algorithm with a pluggable local classifier
/// (ICA-RST / ICA-Bayes / ICA-KNN, Algorithm 1):
///   1. train M_A on the attacker-visible labels,
///   2. bootstrap every unknown node from M_A,
///   3. repeat: re-estimate each unknown node as
///        α · P_A(y | attributes) + β · P_L(y | neighbor estimates)
///      until the estimates converge or max_iterations is hit.
/// `local` must be untrained or retrainable; Train is invoked inside.
CollectiveResult CollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                     AttributeClassifier& local,
                                     const CollectiveConfig& config = {});

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_COLLECTIVE_H_
