#ifndef PPDP_CLASSIFY_COLLECTIVE_H_
#define PPDP_CLASSIFY_COLLECTIVE_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "common/status.h"

namespace ppdp::classify {

/// Parameters of the collective-inference attack (Algorithm 1 / Eq. 3.5).
struct CollectiveConfig {
  double alpha = 0.5;            ///< weight of the attribute classifier P_A
  double beta = 0.5;             ///< weight of the link classifier P_L
  size_t max_iterations = 10;    ///< ICA refinement rounds
  double convergence_tol = 1e-4; ///< stop when max per-node L1 change drops below
  int threads = 0;               ///< exec convention: 0 = all cores, 1 = serial

  /// Rejects non-finite or negative α/β, α = β = 0, zero max_iterations,
  /// a negative tolerance, and a negative thread count. Called at every
  /// inference entry point so misconfiguration surfaces as a non-OK Status
  /// instead of silent garbage.
  Status Validate() const;
};

/// Output of the collective attack.
struct CollectiveResult {
  std::vector<LabelDistribution> distributions;  ///< per node (known = one-hot)
  size_t iterations = 0;                          ///< refinement rounds executed
  bool converged = false;
};

/// Serializable mid-run state of an IcaSolver: everything a fresh process
/// needs to continue the refinement byte-identically (the attribute
/// posteriors are *not* stored — they are a deterministic function of the
/// graph, mask and classifier, and are recomputed on Restore).
struct IcaCheckpoint {
  std::vector<LabelDistribution> distributions;
  size_t iteration = 0;
  bool converged = false;
};

/// Stepwise ICA with checkpoint/resume: the engine behind
/// CollectiveInference, exposed so long runs can survive faults. One
/// Step() is one refinement round; Snapshot()/Restore() capture and
/// reinstall the mid-run state, and a run interrupted between rounds then
/// resumed from its last checkpoint produces byte-identical distributions
/// to an uninterrupted run (rounds are deterministic; no RNG is consumed
/// after bootstrap).
///
/// Fault model: Step() evaluates the "classify.ica.round" failure point
/// first and aborts with kUnavailable *before touching any state* when a
/// drop fires — crash-before-write, so the last checkpoint is always
/// consistent.
///
/// `g`, `known` and `local` are borrowed and must outlive the solver.
class IcaSolver {
 public:
  /// Trains `local` and bootstraps every unknown node (rounds 0 state).
  /// Config invariants are PPDP_CHECK-enforced, as in CollectiveInference.
  IcaSolver(const SocialGraph& g, const std::vector<bool>& known, AttributeClassifier& local,
            const CollectiveConfig& config = {});

  /// One refinement round. kUnavailable on an injected fault (state
  /// untouched), kFailedPrecondition when already Done().
  Status Step();

  /// Converged, or the round budget is exhausted.
  bool Done() const { return converged_ || iteration_ >= config_.max_iterations; }
  size_t iteration() const { return iteration_; }
  bool converged() const { return converged_; }

  IcaCheckpoint Snapshot() const;
  /// Reinstalls a Snapshot taken from a solver over the same graph/mask.
  /// kInvalidArgument on a shape mismatch.
  Status Restore(const IcaCheckpoint& checkpoint);

  /// The current estimates packaged as a CollectiveResult.
  CollectiveResult Finish() const;

 private:
  const SocialGraph& g_;
  const std::vector<bool>& known_;
  CollectiveConfig config_;
  std::vector<LabelDistribution> attribute_posterior_;
  std::vector<LabelDistribution> distributions_;
  std::vector<double> node_change_;
  size_t iteration_ = 0;
  bool converged_ = false;
};

/// Iterative Classification Algorithm with a pluggable local classifier
/// (ICA-RST / ICA-Bayes / ICA-KNN, Algorithm 1):
///   1. train M_A on the attacker-visible labels,
///   2. bootstrap every unknown node from M_A,
///   3. repeat: re-estimate each unknown node as
///        α · P_A(y | attributes) + β · P_L(y | neighbor estimates)
///      until the estimates converge or max_iterations is hit.
/// `local` must be untrained or retrainable; Train is invoked inside.
/// Runs on an IcaSolver; rounds aborted by an injected fault are retried
/// in place (the solver's state survives), so the result under an armed
/// FaultPlan equals the fault-free result.
CollectiveResult CollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                     AttributeClassifier& local,
                                     const CollectiveConfig& config = {});

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_COLLECTIVE_H_
