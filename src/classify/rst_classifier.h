#ifndef PPDP_CLASSIFY_RST_CLASSIFIER_H_
#define PPDP_CLASSIFY_RST_CLASSIFIER_H_

#include <optional>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "rst/decision_rules.h"

namespace ppdp::classify {

/// The dissertation's Rough-Set-Theory local classifier: builds an
/// information system from the attacker-visible nodes, computes a greedy
/// reduct, extracts decision rules (Section 3.3.2) and classifies by rule
/// lookup with nearest-rule fallback. Robust to the incomplete / uncertain
/// attribute data motivating RST in Section 3.2.3.
class RstClassifier : public AttributeClassifier {
 public:
  RstClassifier() = default;

  void Train(const SocialGraph& g, const std::vector<bool>& known) override;
  LabelDistribution Predict(const SocialGraph& g, NodeId u) const override;
  std::string name() const override { return "RST"; }

  /// The reduct used by the learned rule set (empty before Train).
  const std::vector<size_t>& reduct() const;

 private:
  std::optional<rst::RuleSet> rules_;
};

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_RST_CLASSIFIER_H_
