#ifndef PPDP_CLASSIFY_KNN_H_
#define PPDP_CLASSIFY_KNN_H_

#include <string>
#include <vector>

#include "classify/classifier.h"

namespace ppdp::classify {

/// K-nearest-neighbor classifier over attribute sets. Distance is Hamming
/// over categories where both nodes publish a value, plus a half-mismatch
/// penalty per category where exactly one side is missing (so sparsely
/// published profiles don't look spuriously close). Ties at the k-th rank
/// all enter the vote; votes are support counts normalized to a
/// distribution.
class KnnClassifier : public AttributeClassifier {
 public:
  explicit KnnClassifier(size_t k = 7) : k_(k) {}

  void Train(const SocialGraph& g, const std::vector<bool>& known) override;
  LabelDistribution Predict(const SocialGraph& g, NodeId u) const override;
  std::string name() const override { return "KNN"; }

 private:
  size_t k_;
  int32_t num_labels_ = 0;
  std::vector<std::vector<graph::AttributeValue>> train_rows_;
  std::vector<graph::Label> train_labels_;
  LabelDistribution prior_;
};

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_KNN_H_
