#ifndef PPDP_CLASSIFY_GIBBS_H_
#define PPDP_CLASSIFY_GIBBS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "classify/collective.h"
#include "common/rng.h"

namespace ppdp::classify {

/// Parameters of the Gibbs-sampling collective classifier (the second
/// collective-classification algorithm Section 3.4 names alongside ICA).
struct GibbsConfig {
  double alpha = 0.5;        ///< attribute-posterior weight, as in Eq. 3.5
  double beta = 0.5;         ///< link-vote weight
  size_t burn_in = 20;       ///< sweeps discarded before collecting
  size_t samples = 80;       ///< sweeps averaged into the output beliefs (per chain)
  size_t chains = 1;         ///< independent chains pooled into the beliefs
  uint64_t seed = 1;
  int threads = 0;           ///< exec convention: 0 = all cores, 1 = serial

  /// Rejects invalid α/β (see CollectiveConfig), zero samples or chains,
  /// and a negative thread count.
  Status Validate() const;
};

/// Serializable mid-run state of one Gibbs chain: hard-label state,
/// post-burn-in tallies, sweep position and the chain's exact RNG stream
/// position (Rng::SaveState). Restoring it resumes the chain's deviate
/// sequence precisely where it stopped, which is what makes an
/// interrupted-and-resumed run byte-identical to an uninterrupted one.
struct GibbsChainCheckpoint {
  size_t chain = 0;
  size_t sweeps_done = 0;
  std::vector<graph::Label> state;
  std::vector<std::vector<double>> tallies;  ///< [node][label]
  std::string rng_state;
};

/// Checkpointable multi-chain Gibbs engine behind GibbsCollectiveInference.
/// Construction trains the local classifier, caches attribute posteriors
/// and samples every chain's initial state; Run() then advances all
/// unfinished chains to their sweep budget, in parallel under
/// config.threads with the usual per-chain Split streams (results are
/// byte-identical at every thread count).
///
/// Fault model: each sweep first evaluates the "classify.gibbs.sweep"
/// failure point; a fired drop interrupts that chain *between* sweeps
/// (sweeps are atomic), Run() returns kUnavailable, and the sampler can
/// either Run() again (retry in place) or be Snapshot()-ed, destroyed,
/// and later Restore()-d in a fresh sampler — both continuations finish
/// with byte-identical pooled beliefs.
///
/// `g`, `known` and `local` are borrowed and must outlive the sampler.
class GibbsSampler {
 public:
  GibbsSampler(const SocialGraph& g, const std::vector<bool>& known, AttributeClassifier& local,
               const GibbsConfig& config = {});

  /// Advances every unfinished chain toward burn_in + samples sweeps.
  /// OK when all chains finished; kUnavailable when injected faults
  /// interrupted at least one chain (partial progress is retained).
  Status Run();

  bool Finished() const;
  /// Sweeps completed by chain `chain`.
  size_t SweepsDone(size_t chain) const;

  /// One checkpoint per chain, in chain order.
  std::vector<GibbsChainCheckpoint> Snapshot() const;
  /// Reinstalls checkpoints taken from a sampler with the same graph,
  /// mask and config. kInvalidArgument on shape mismatch.
  Status Restore(const std::vector<GibbsChainCheckpoint>& checkpoints);

  /// Pools the chains' post-burn-in tallies into per-node distributions
  /// (chain-order fold; PPDP_CHECKs Finished()).
  CollectiveResult Collect() const;

 private:
  struct Chain {
    size_t index = 0;
    size_t sweeps_done = 0;
    std::vector<graph::Label> state;
    std::vector<std::vector<double>> tallies;
    Rng rng;
    explicit Chain(Rng r) : rng(std::move(r)) {}
  };

  /// One single-site sweep over all unknown nodes (+ tally when past
  /// burn-in). The unit of atomicity for checkpoints and faults.
  void SweepChain(Chain& chain);

  const SocialGraph& g_;
  const std::vector<bool>& known_;
  GibbsConfig config_;
  size_t labels_ = 0;
  size_t total_sweeps_ = 0;
  std::vector<LabelDistribution> attribute_posterior_;
  std::vector<Chain> chains_;
};

/// Gibbs-sampling collective inference: unknown labels are initialized by
/// sampling from the local classifier's posterior, then resampled
/// node-by-node from the α/β mixture of the (fixed) attribute posterior and
/// the weighted vote of the neighbors' *current hard labels*. After burn-in,
/// per-node label frequencies across sweeps become the output distributions.
///
/// Compared with ICA (collective.h) this explores the joint label space
/// stochastically instead of propagating soft beliefs — the classic
/// trade-off the collective-classification literature the chapter cites
/// studies. `local` is trained inside.
///
/// With chains > 1 the procedure runs that many independent chains — chain
/// c derives its randomness as Rng(seed).Split(c), so each chain's stream
/// is index-addressed rather than shared — and pools their post-burn-in
/// tallies. Chains execute in parallel under `threads`; because streams are
/// per-chain and the pool fold is in chain order, the output is
/// byte-identical at every thread count.
CollectiveResult GibbsCollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                          AttributeClassifier& local,
                                          const GibbsConfig& config = {});

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_GIBBS_H_
