#ifndef PPDP_CLASSIFY_GIBBS_H_
#define PPDP_CLASSIFY_GIBBS_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "classify/collective.h"
#include "common/rng.h"

namespace ppdp::classify {

/// Parameters of the Gibbs-sampling collective classifier (the second
/// collective-classification algorithm Section 3.4 names alongside ICA).
struct GibbsConfig {
  double alpha = 0.5;        ///< attribute-posterior weight, as in Eq. 3.5
  double beta = 0.5;         ///< link-vote weight
  size_t burn_in = 20;       ///< sweeps discarded before collecting
  size_t samples = 80;       ///< sweeps averaged into the output beliefs (per chain)
  size_t chains = 1;         ///< independent chains pooled into the beliefs
  uint64_t seed = 1;
  int threads = 0;           ///< exec convention: 0 = all cores, 1 = serial

  /// Rejects invalid α/β (see CollectiveConfig), zero samples or chains,
  /// and a negative thread count.
  Status Validate() const;
};

/// Gibbs-sampling collective inference: unknown labels are initialized by
/// sampling from the local classifier's posterior, then resampled
/// node-by-node from the α/β mixture of the (fixed) attribute posterior and
/// the weighted vote of the neighbors' *current hard labels*. After burn-in,
/// per-node label frequencies across sweeps become the output distributions.
///
/// Compared with ICA (collective.h) this explores the joint label space
/// stochastically instead of propagating soft beliefs — the classic
/// trade-off the collective-classification literature the chapter cites
/// studies. `local` is trained inside.
///
/// With chains > 1 the procedure runs that many independent chains — chain
/// c derives its randomness as Rng(seed).Split(c), so each chain's stream
/// is index-addressed rather than shared — and pools their post-burn-in
/// tallies. Chains execute in parallel under `threads`; because streams are
/// per-chain and the pool fold is in chain order, the output is
/// byte-identical at every thread count.
CollectiveResult GibbsCollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                          AttributeClassifier& local,
                                          const GibbsConfig& config = {});

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_GIBBS_H_
