#include "classify/collective.h"

#include <algorithm>
#include <cmath>

#include "classify/relational.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "exec/parallel.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::classify {

namespace {
/// Per-node work (a Predict or a relational mix) is light; batch enough
/// nodes per chunk that scheduling cost disappears.
constexpr size_t kNodeGrain = 64;
}  // namespace

Status CollectiveConfig::Validate() const {
  if (!(std::isfinite(alpha) && std::isfinite(beta)) || alpha < 0.0 || beta < 0.0) {
    return Status::InvalidArgument("alpha and beta must be finite and non-negative");
  }
  if (alpha + beta <= 0.0) {
    return Status::InvalidArgument("alpha + beta must be positive (both zero disables Eq. 3.5)");
  }
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!(convergence_tol >= 0.0)) {
    return Status::InvalidArgument("convergence_tol must be non-negative");
  }
  return exec::ExecConfig{threads}.Validate();
}

CollectiveResult CollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                     AttributeClassifier& local, const CollectiveConfig& config) {
  PPDP_CHECK(known.size() == g.num_nodes());
  Status valid = config.Validate();
  PPDP_CHECK(valid.ok()) << valid.ToString();
  obs::TraceSpan span("classify.ica");
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("classify.ica.runs");
  static obs::Counter& iterations =
      obs::MetricsRegistry::Global().counter("classify.ica.iterations");
  static obs::Histogram& sweep_seconds =
      obs::MetricsRegistry::Global().histogram("classify.ica.sweep_seconds");
  runs.Increment();

  const exec::ExecConfig exec_config{config.threads};
  local.Train(g, known);

  CollectiveResult result;
  result.distributions = BootstrapDistributions(g, known, local, config.threads);

  // Cache the (fixed) attribute posteriors; only P_L changes per round.
  // Each node's posterior is an independent Predict — fan the nodes out.
  std::vector<LabelDistribution> attribute_posterior(g.num_nodes());
  exec::ParallelFor(
      0, g.num_nodes(), kNodeGrain,
      [&](size_t u) {
        if (!known[u]) attribute_posterior[u] = local.Predict(g, static_cast<NodeId>(u));
      },
      exec_config);

  const double norm = config.alpha + config.beta;
  std::vector<double> node_change(g.num_nodes(), 0.0);
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    double sweep_start = obs::MonotonicSeconds();
    std::vector<LabelDistribution> next = result.distributions;
    // Every node's re-estimate reads only the previous round's distributions
    // and writes its own slot, so the sweep parallelizes without changing a
    // single bit of the serial result.
    exec::ParallelFor(
        0, g.num_nodes(), kNodeGrain,
        [&](size_t u) {
          if (known[u]) {
            node_change[u] = 0.0;
            return;
          }
          LabelDistribution link =
              RelationalPredict(g, static_cast<NodeId>(u), result.distributions);
          LabelDistribution mixed(link.size());
          for (size_t y = 0; y < mixed.size(); ++y) {
            mixed[y] = (config.alpha * attribute_posterior[u][y] + config.beta * link[y]) / norm;
          }
          NormalizeInPlace(mixed);
          node_change[u] = L1Distance(mixed, result.distributions[u]);
          next[u] = std::move(mixed);
        },
        exec_config);
    double max_change = 0.0;
    for (double change : node_change) max_change = std::max(max_change, change);
    result.distributions = std::move(next);
    result.iterations = iter + 1;
    iterations.Increment();
    sweep_seconds.Observe(obs::MonotonicSeconds() - sweep_start);
    if (max_change < config.convergence_tol) {
      result.converged = true;
      break;
    }
  }
  PPDP_LOG(DEBUG) << "ICA finished" << obs::Field("iterations", result.iterations)
                  << obs::Field("converged", result.converged)
                  << obs::Field("nodes", g.num_nodes())
                  << obs::Field("seconds", span.ElapsedSeconds());
  return result;
}

}  // namespace ppdp::classify
