#include "classify/collective.h"

#include <algorithm>
#include <cmath>

#include "classify/relational.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "exec/parallel.h"
#include "fault/fault.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::classify {

namespace {
/// Per-node work (a Predict or a relational mix) is light; batch enough
/// nodes per chunk that scheduling cost disappears.
constexpr size_t kNodeGrain = 64;
}  // namespace

Status CollectiveConfig::Validate() const {
  if (!(std::isfinite(alpha) && std::isfinite(beta)) || alpha < 0.0 || beta < 0.0) {
    return Status::InvalidArgument("alpha and beta must be finite and non-negative");
  }
  if (alpha + beta <= 0.0) {
    return Status::InvalidArgument("alpha + beta must be positive (both zero disables Eq. 3.5)");
  }
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!(convergence_tol >= 0.0)) {
    return Status::InvalidArgument("convergence_tol must be non-negative");
  }
  return exec::ExecConfig{threads}.Validate();
}

IcaSolver::IcaSolver(const SocialGraph& g, const std::vector<bool>& known,
                     AttributeClassifier& local, const CollectiveConfig& config)
    : g_(g), known_(known), config_(config) {
  PPDP_CHECK(known_.size() == g_.num_nodes());
  Status valid = config_.Validate();
  PPDP_CHECK(valid.ok()) << valid.ToString();
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("classify.ica.runs");
  runs.Increment();

  const exec::ExecConfig exec_config{config_.threads};
  local.Train(g_, known_);
  distributions_ = BootstrapDistributions(g_, known_, local, config_.threads);

  // Cache the (fixed) attribute posteriors; only P_L changes per round.
  // Each node's posterior is an independent Predict — fan the nodes out.
  attribute_posterior_.resize(g_.num_nodes());
  exec::ParallelFor(
      0, g_.num_nodes(), kNodeGrain,
      [&](size_t u) {
        if (!known_[u]) attribute_posterior_[u] = local.Predict(g_, static_cast<NodeId>(u));
      },
      exec_config);
  node_change_.assign(g_.num_nodes(), 0.0);
}

Status IcaSolver::Step() {
  if (Done()) return Status::FailedPrecondition("ICA run already finished");
  // Crash-before-write: an injected fault aborts before this round mutates
  // anything, so resuming from the last Snapshot loses at most one round's
  // work and never observes a half-applied sweep.
  fault::FaultDecision fault_decision = PPDP_FAULT_POINT("classify.ica.round", fault::kMaskDrop);
  if (fault_decision.drop()) return fault_decision.AsStatus("classify.ica.round");

  static obs::Counter& iterations =
      obs::MetricsRegistry::Global().counter("classify.ica.iterations");
  static obs::Histogram& sweep_seconds =
      obs::MetricsRegistry::Global().histogram("classify.ica.sweep_seconds");
  const exec::ExecConfig exec_config{config_.threads};
  const double norm = config_.alpha + config_.beta;

  double sweep_start = obs::MonotonicSeconds();
  std::vector<LabelDistribution> next = distributions_;
  // Every node's re-estimate reads only the previous round's distributions
  // and writes its own slot, so the sweep parallelizes without changing a
  // single bit of the serial result.
  exec::ParallelFor(
      0, g_.num_nodes(), kNodeGrain,
      [&](size_t u) {
        if (known_[u]) {
          node_change_[u] = 0.0;
          return;
        }
        LabelDistribution link = RelationalPredict(g_, static_cast<NodeId>(u), distributions_);
        LabelDistribution mixed(link.size());
        for (size_t y = 0; y < mixed.size(); ++y) {
          mixed[y] = (config_.alpha * attribute_posterior_[u][y] + config_.beta * link[y]) / norm;
        }
        NormalizeInPlace(mixed);
        node_change_[u] = L1Distance(mixed, distributions_[u]);
        next[u] = std::move(mixed);
      },
      exec_config);
  double max_change = 0.0;
  for (double change : node_change_) max_change = std::max(max_change, change);
  distributions_ = std::move(next);
  ++iteration_;
  iterations.Increment();
  sweep_seconds.Observe(obs::MonotonicSeconds() - sweep_start);
  if (max_change < config_.convergence_tol) converged_ = true;
  return Status::Ok();
}

IcaCheckpoint IcaSolver::Snapshot() const {
  IcaCheckpoint checkpoint;
  checkpoint.distributions = distributions_;
  checkpoint.iteration = iteration_;
  checkpoint.converged = converged_;
  return checkpoint;
}

Status IcaSolver::Restore(const IcaCheckpoint& checkpoint) {
  if (checkpoint.distributions.size() != g_.num_nodes()) {
    return Status::InvalidArgument("ICA checkpoint node count mismatch");
  }
  if (checkpoint.iteration > config_.max_iterations) {
    return Status::InvalidArgument("ICA checkpoint beyond this solver's round budget");
  }
  distributions_ = checkpoint.distributions;
  iteration_ = checkpoint.iteration;
  converged_ = checkpoint.converged;
  return Status::Ok();
}

CollectiveResult IcaSolver::Finish() const {
  CollectiveResult result;
  result.distributions = distributions_;
  result.iterations = iteration_;
  result.converged = converged_;
  return result;
}

CollectiveResult CollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                     AttributeClassifier& local, const CollectiveConfig& config) {
  obs::TraceSpan span("classify.ica");
  IcaSolver solver(g, known, local, config);
  size_t consecutive_faults = 0;
  while (!solver.Done()) {
    Status stepped = solver.Step();
    if (!stepped.ok()) {
      // Injected round failure: the solver's state is intact, so retrying
      // the round in place is the recovery. The cap turns a pathological
      // rate-1.0 plan into a loud failure instead of a silent hang.
      PPDP_CHECK(++consecutive_faults < 100)
          << "ICA round failed " << consecutive_faults << " times in a row: "
          << stepped.ToString();
      continue;
    }
    consecutive_faults = 0;
  }
  CollectiveResult result = solver.Finish();
  PPDP_LOG(DEBUG) << "ICA finished" << obs::Field("iterations", result.iterations)
                  << obs::Field("converged", result.converged)
                  << obs::Field("nodes", g.num_nodes())
                  << obs::Field("seconds", span.ElapsedSeconds());
  return result;
}

}  // namespace ppdp::classify
