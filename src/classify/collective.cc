#include "classify/collective.h"

#include <algorithm>

#include "classify/relational.h"
#include "common/logging.h"
#include "common/math_util.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdp::classify {

CollectiveResult CollectiveInference(const SocialGraph& g, const std::vector<bool>& known,
                                     AttributeClassifier& local, const CollectiveConfig& config) {
  PPDP_CHECK(known.size() == g.num_nodes());
  PPDP_CHECK(config.alpha >= 0.0 && config.beta >= 0.0 && config.alpha + config.beta > 0.0)
      << "alpha/beta must be non-negative and not both zero";
  obs::TraceSpan span("classify.ica");
  static obs::Counter& runs = obs::MetricsRegistry::Global().counter("classify.ica.runs");
  static obs::Counter& iterations =
      obs::MetricsRegistry::Global().counter("classify.ica.iterations");
  static obs::Histogram& sweep_seconds =
      obs::MetricsRegistry::Global().histogram("classify.ica.sweep_seconds");
  runs.Increment();

  local.Train(g, known);

  CollectiveResult result;
  result.distributions = BootstrapDistributions(g, known, local);

  // Cache the (fixed) attribute posteriors; only P_L changes per round.
  std::vector<LabelDistribution> attribute_posterior(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u]) attribute_posterior[u] = local.Predict(g, u);
  }

  const double norm = config.alpha + config.beta;
  for (size_t iter = 0; iter < config.max_iterations; ++iter) {
    double sweep_start = obs::MonotonicSeconds();
    double max_change = 0.0;
    std::vector<LabelDistribution> next = result.distributions;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (known[u]) continue;
      LabelDistribution link = RelationalPredict(g, u, result.distributions);
      LabelDistribution mixed(link.size());
      for (size_t y = 0; y < mixed.size(); ++y) {
        mixed[y] = (config.alpha * attribute_posterior[u][y] + config.beta * link[y]) / norm;
      }
      NormalizeInPlace(mixed);
      max_change = std::max(max_change, L1Distance(mixed, result.distributions[u]));
      next[u] = std::move(mixed);
    }
    result.distributions = std::move(next);
    result.iterations = iter + 1;
    iterations.Increment();
    sweep_seconds.Observe(obs::MonotonicSeconds() - sweep_start);
    if (max_change < config.convergence_tol) {
      result.converged = true;
      break;
    }
  }
  PPDP_LOG(DEBUG) << "ICA finished" << obs::Field("iterations", result.iterations)
                  << obs::Field("converged", result.converged)
                  << obs::Field("nodes", g.num_nodes())
                  << obs::Field("seconds", span.ElapsedSeconds());
  return result;
}

}  // namespace ppdp::classify
