#include "classify/naive_bayes.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace ppdp::classify {

void NaiveBayesClassifier::Train(const SocialGraph& g, const std::vector<bool>& known) {
  PPDP_CHECK(known.size() == g.num_nodes());
  num_labels_ = g.num_labels();
  const size_t labels = static_cast<size_t>(num_labels_);

  std::vector<double> label_counts(labels, smoothing_);
  log_likelihood_.assign(g.num_categories(), {});
  std::vector<std::vector<std::vector<double>>> counts(g.num_categories());
  for (size_t c = 0; c < g.num_categories(); ++c) {
    counts[c].assign(static_cast<size_t>(g.categories()[c].num_values),
                     std::vector<double>(labels, smoothing_));
  }

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!known[u]) continue;
    graph::Label y = g.GetLabel(u);
    PPDP_CHECK(y != graph::kUnknownLabel) << "training node " << u << " has no label";
    label_counts[static_cast<size_t>(y)] += 1.0;
    for (size_t c = 0; c < g.num_categories(); ++c) {
      graph::AttributeValue v = g.Attribute(u, c);
      if (v == graph::kMissingAttribute) continue;
      counts[c][static_cast<size_t>(v)][static_cast<size_t>(y)] += 1.0;
    }
  }

  log_prior_.assign(labels, 0.0);
  if (uniform_prior_) {
    for (size_t y = 0; y < labels; ++y) log_prior_[y] = -std::log(static_cast<double>(labels));
  } else {
    double total = 0.0;
    for (double v : label_counts) total += v;
    for (size_t y = 0; y < labels; ++y) log_prior_[y] = std::log(label_counts[y] / total);
  }

  for (size_t c = 0; c < g.num_categories(); ++c) {
    const size_t num_values = counts[c].size();
    log_likelihood_[c].assign(num_values, std::vector<double>(labels, 0.0));
    // Per-label normalizer over values of this category.
    std::vector<double> per_label_total(labels, 0.0);
    for (size_t v = 0; v < num_values; ++v) {
      for (size_t y = 0; y < labels; ++y) per_label_total[y] += counts[c][v][y];
    }
    for (size_t v = 0; v < num_values; ++v) {
      for (size_t y = 0; y < labels; ++y) {
        log_likelihood_[c][v][y] = std::log(counts[c][v][y] / per_label_total[y]);
      }
    }
  }
}

LabelDistribution NaiveBayesClassifier::Predict(const SocialGraph& g, NodeId u) const {
  PPDP_CHECK(num_labels_ > 0) << "Predict before Train";
  const size_t labels = static_cast<size_t>(num_labels_);
  std::vector<double> log_posterior = log_prior_;
  for (size_t c = 0; c < g.num_categories(); ++c) {
    graph::AttributeValue v = g.Attribute(u, c);
    if (v == graph::kMissingAttribute) continue;
    for (size_t y = 0; y < labels; ++y) {
      log_posterior[y] += log_likelihood_[c][static_cast<size_t>(v)][y];
    }
  }
  // Stable softmax over log posteriors.
  double max_log = log_posterior[0];
  for (double v : log_posterior) max_log = std::max(max_log, v);
  LabelDistribution dist(labels);
  for (size_t y = 0; y < labels; ++y) dist[y] = std::exp(log_posterior[y] - max_log);
  NormalizeInPlace(dist);
  return dist;
}

}  // namespace ppdp::classify
