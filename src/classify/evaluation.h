#ifndef PPDP_CLASSIFY_EVALUATION_H_
#define PPDP_CLASSIFY_EVALUATION_H_

#include <memory>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "classify/collective.h"
#include "common/rng.h"

namespace ppdp::classify {

/// The attack models compared throughout Section 3.7: attributes only,
/// links only (with attribute bootstrap), and collective inference — via
/// ICA or Gibbs sampling (the two algorithms Section 3.4 names).
enum class AttackModel { kAttrOnly, kLinkOnly, kCollective, kGibbs };

const char* AttackModelName(AttackModel model);

/// The three local classifier families.
enum class LocalModel { kNaiveBayes, kKnn, kRst };

const char* LocalModelName(LocalModel model);

/// Creates a fresh local classifier of the given family.
std::unique_ptr<AttributeClassifier> MakeLocalClassifier(LocalModel model);

/// Result of running an attack against a graph view.
struct AttackOutcome {
  double accuracy = 0.0;  ///< fraction of hidden labels predicted correctly
  size_t evaluated = 0;   ///< number of hidden-label nodes scored
  std::vector<LabelDistribution> distributions;  ///< per node
};

/// Runs `model` with local classifier `local` against the graph where only
/// labels with known[u]==true are attacker-visible; scores predictions on
/// the remaining nodes against the graph's ground-truth labels.
AttackOutcome RunAttack(const SocialGraph& g, const std::vector<bool>& known, AttackModel model,
                        AttributeClassifier& local, const CollectiveConfig& config = {});

/// Samples an attacker-visible mask covering ~`known_fraction` of nodes.
std::vector<bool> SampleKnownMask(const SocialGraph& g, double known_fraction, Rng& rng);

/// Fraction of hidden nodes whose argmax predicted label matches ground
/// truth.
double Accuracy(const SocialGraph& g, const std::vector<bool>& known,
                const std::vector<LabelDistribution>& distributions);

/// Per-class breakdown of an attack's predictions on the hidden nodes.
struct ConfusionMatrix {
  /// counts[truth][predicted].
  std::vector<std::vector<size_t>> counts;
  size_t total = 0;

  double Accuracy() const;
  /// Recall of one class (0 when the class never occurs).
  double Recall(graph::Label label) const;
  /// Precision of one class (0 when it is never predicted).
  double Precision(graph::Label label) const;
  /// Unweighted mean recall over classes that occur — the balanced accuracy
  /// that exposes majority-class-only predictors on the 65-72 % majority
  /// datasets.
  double MacroRecall() const;
};

/// Builds the confusion matrix of `distributions` (argmax decisions) on the
/// hidden labeled nodes.
ConfusionMatrix BuildConfusionMatrix(const SocialGraph& g, const std::vector<bool>& known,
                                     const std::vector<LabelDistribution>& distributions);

/// Accuracy statistics over repeated random attacker-visibility splits —
/// the repeated-holdout protocol that turns the single-split numbers of the
/// benches into mean ± deviation.
struct RepeatedAttackResult {
  std::vector<double> accuracies;  ///< one per repeat
  double mean = 0.0;
  double stddev = 0.0;             ///< population standard deviation
};

/// Runs `model` with `local_model` against `repeats` independently sampled
/// known-masks covering `known_fraction` of nodes (seeded, reproducible).
RepeatedAttackResult RepeatedAttack(const SocialGraph& g, double known_fraction, size_t repeats,
                                    AttackModel model, LocalModel local_model,
                                    const CollectiveConfig& config = {}, uint64_t seed = 1);

/// The §3.7.2 α/β selection procedure: "we study a set of experiments with
/// multiple combinations and find the optimal one that renders the best
/// prediction accuracy for CC". Evaluates the collective attack on a
/// *validation* subset of the known labels (so tuning never peeks at the
/// hidden test labels) for every α on `grid` (β = 1 − α) and returns the
/// winner with its validation accuracy.
struct AlphaBetaChoice {
  double alpha = 0.5;
  double beta = 0.5;
  double validation_accuracy = 0.0;
};

AlphaBetaChoice TuneAlphaBeta(const SocialGraph& g, const std::vector<bool>& known,
                              LocalModel local_model, const std::vector<double>& grid,
                              double validation_fraction = 0.25, uint64_t seed = 1);

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_EVALUATION_H_
