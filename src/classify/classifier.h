#ifndef PPDP_CLASSIFY_CLASSIFIER_H_
#define PPDP_CLASSIFY_CLASSIFIER_H_

#include <string>
#include <vector>

#include "graph/social_graph.h"

namespace ppdp::classify {

using graph::NodeId;
using graph::SocialGraph;

/// A probability distribution over the sensitive attribute's class labels.
using LabelDistribution = std::vector<double>;

/// Interface of an attribute-based local classifier M_A: trains on the nodes
/// whose labels are visible to the attacker and predicts a label
/// distribution for any node from its published attribute set alone.
///
/// Implementations: NaiveBayesClassifier, KnnClassifier, RstClassifier —
/// the three local models the dissertation evaluates (Section 3.7.2).
class AttributeClassifier {
 public:
  virtual ~AttributeClassifier() = default;

  /// Fits the model on nodes u with known[u] == true (their labels must not
  /// be kUnknownLabel).
  virtual void Train(const SocialGraph& g, const std::vector<bool>& known) = 0;

  /// Returns P(label | attributes of u). Must be called after Train.
  virtual LabelDistribution Predict(const SocialGraph& g, NodeId u) const = 0;

  /// Short display name ("Bayes", "KNN", "RST").
  virtual std::string name() const = 0;
};

}  // namespace ppdp::classify

#endif  // PPDP_CLASSIFY_CLASSIFIER_H_
