#include "graph/social_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace ppdp::graph {

SocialGraph::SocialGraph(std::vector<AttributeCategory> categories, int32_t num_labels)
    : categories_(std::move(categories)), num_labels_(num_labels) {
  PPDP_CHECK(num_labels_ >= 2) << "a decision attribute needs at least two labels";
  for (const auto& c : categories_) {
    PPDP_CHECK(c.num_values >= 1) << "category " << c.name << " has no values";
  }
}

NodeId SocialGraph::AddNode(std::vector<AttributeValue> attributes, Label label) {
  PPDP_CHECK(attributes.size() == categories_.size())
      << "node has " << attributes.size() << " attributes, schema has " << categories_.size();
  for (size_t c = 0; c < attributes.size(); ++c) {
    PPDP_CHECK(attributes[c] == kMissingAttribute ||
               (attributes[c] >= 0 && attributes[c] < categories_[c].num_values))
        << "attribute value " << attributes[c] << " out of range for category "
        << categories_[c].name;
  }
  PPDP_CHECK(label == kUnknownLabel || (label >= 0 && label < num_labels_))
      << "label " << label << " out of range";
  attributes_.push_back(std::move(attributes));
  labels_.push_back(label);
  adjacency_.emplace_back();
  return static_cast<NodeId>(attributes_.size() - 1);
}

void SocialGraph::CheckNode(NodeId u) const {
  PPDP_CHECK(u < attributes_.size()) << "node " << u << " out of range";
}

bool SocialGraph::AddEdge(NodeId u, NodeId v) {
  CheckNode(u);
  CheckNode(v);
  if (u == v) return false;
  if (HasEdge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool SocialGraph::RemoveEdge(NodeId u, NodeId v) {
  CheckNode(u);
  CheckNode(v);
  auto erase_from = [](std::vector<NodeId>& list, NodeId target) {
    auto it = std::find(list.begin(), list.end(), target);
    if (it == list.end()) return false;
    list.erase(it);
    return true;
  };
  if (!erase_from(adjacency_[u], v)) return false;
  PPDP_CHECK(erase_from(adjacency_[v], u)) << "asymmetric adjacency";
  --num_edges_;
  return true;
}

bool SocialGraph::HasEdge(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  const auto& smaller = adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

const std::vector<NodeId>& SocialGraph::Neighbors(NodeId u) const {
  CheckNode(u);
  return adjacency_[u];
}

AttributeValue SocialGraph::Attribute(NodeId u, size_t category) const {
  CheckNode(u);
  PPDP_CHECK(category < categories_.size()) << "category " << category << " out of range";
  return attributes_[u][category];
}

void SocialGraph::SetAttribute(NodeId u, size_t category, AttributeValue value) {
  CheckNode(u);
  PPDP_CHECK(category < categories_.size()) << "category " << category << " out of range";
  PPDP_CHECK(value == kMissingAttribute ||
             (value >= 0 && value < categories_[category].num_values))
      << "attribute value " << value << " out of range";
  attributes_[u][category] = value;
}

Label SocialGraph::GetLabel(NodeId u) const {
  CheckNode(u);
  return labels_[u];
}

void SocialGraph::SetLabel(NodeId u, Label label) {
  CheckNode(u);
  PPDP_CHECK(label == kUnknownLabel || (label >= 0 && label < num_labels_));
  labels_[u] = label;
}

void SocialGraph::MaskCategory(size_t category) {
  PPDP_CHECK(category < categories_.size()) << "category " << category << " out of range";
  for (auto& attrs : attributes_) attrs[category] = kMissingAttribute;
}

std::vector<std::pair<NodeId, NodeId>> SocialGraph::Edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < attributes_.size(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

double SocialGraph::LinkWeight(NodeId u, NodeId v) const {
  CheckNode(u);
  CheckNode(v);
  size_t published = 0;
  size_t shared = 0;
  for (size_t c = 0; c < categories_.size(); ++c) {
    if (attributes_[u][c] == kMissingAttribute) continue;
    ++published;
    if (attributes_[u][c] == attributes_[v][c]) ++shared;
  }
  if (published == 0) return 0.0;
  return static_cast<double>(shared) / static_cast<double>(published);
}

}  // namespace ppdp::graph
