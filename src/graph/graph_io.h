#ifndef PPDP_GRAPH_GRAPH_IO_H_
#define PPDP_GRAPH_GRAPH_IO_H_

#include <string>

#include "common/result.h"
#include "graph/social_graph.h"

namespace ppdp::graph {

/// Persists a social graph as three CSV files next to `base_path`:
///   <base>.schema.csv  category,name,num_values  (+ a "labels" row)
///   <base>.nodes.csv   node,label,h1,...,hk      (missing values blank)
///   <base>.edges.csv   u,v                       (each edge once, u < v)
/// The format round-trips exactly through LoadGraph and is easy to produce
/// from external datasets (e.g. a real Facebook100 export).
Status SaveGraph(const SocialGraph& g, const std::string& base_path);

/// Loads a graph saved by SaveGraph (or hand-written in the same format).
Result<SocialGraph> LoadGraph(const std::string& base_path);

/// Builds a graph from the three CSV documents as in-memory strings — the
/// same grammar and validation as LoadGraph without touching the
/// filesystem (the fuzz harness drives this surface directly). Every
/// defect in untrusted input — out-of-range labels/attributes/edges,
/// categories with no values, overflowing integers — is a kInvalidArgument
/// Status, never a CHECK-abort.
Result<SocialGraph> ParseGraphCsv(const std::string& schema_csv, const std::string& nodes_csv,
                                  const std::string& edges_csv);

}  // namespace ppdp::graph

#endif  // PPDP_GRAPH_GRAPH_IO_H_
