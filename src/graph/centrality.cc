#include "graph/centrality.h"

#include <cmath>
#include <deque>

#include "common/logging.h"

namespace ppdp::graph {

std::vector<double> DegreeCentrality(const SocialGraph& g) {
  std::vector<double> centrality(g.num_nodes(), 0.0);
  if (g.num_nodes() <= 1) return centrality;
  double denom = static_cast<double>(g.num_nodes() - 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    centrality[u] = static_cast<double>(g.Degree(u)) / denom;
  }
  return centrality;
}

std::vector<double> ClosenessCentrality(const SocialGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  if (n <= 1) return centrality;
  std::vector<int64_t> dist(n);
  for (NodeId source = 0; source < n; ++source) {
    std::fill(dist.begin(), dist.end(), -1);
    dist[source] = 0;
    std::deque<NodeId> queue{source};
    int64_t total = 0;
    size_t reachable = 1;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.Neighbors(u)) {
        if (dist[v] >= 0) continue;
        dist[v] = dist[u] + 1;
        total += dist[v];
        ++reachable;
        queue.push_back(v);
      }
    }
    if (reachable <= 1 || total == 0) continue;
    double r = static_cast<double>(reachable - 1);
    centrality[source] =
        (r / static_cast<double>(total)) * (r / static_cast<double>(n - 1));
  }
  return centrality;
}

std::vector<double> BetweennessCentrality(const SocialGraph& g) {
  const size_t n = g.num_nodes();
  std::vector<double> centrality(n, 0.0);
  // Brandes (2001): one BFS per source with path counting, then dependency
  // accumulation in reverse finish order.
  std::vector<int64_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<NodeId> order;
  order.reserve(n);

  for (NodeId source = 0; source < n; ++source) {
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : predecessors) p.clear();
    order.clear();

    dist[source] = 0;
    sigma[source] = 1.0;
    std::deque<NodeId> queue{source};
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      order.push_back(u);
      for (NodeId v : g.Neighbors(u)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
        if (dist[v] == dist[u] + 1) {
          sigma[v] += sigma[u];
          predecessors[v].push_back(u);
        }
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      NodeId w = *it;
      for (NodeId u : predecessors[w]) {
        delta[u] += (sigma[u] / sigma[w]) * (1.0 + delta[w]);
      }
      if (w != source) centrality[w] += delta[w];
    }
  }
  // Each undirected pair was counted from both endpoints.
  for (double& c : centrality) c /= 2.0;
  return centrality;
}

double CentralityDisparity(const std::vector<double>& before,
                           const std::vector<double>& after) {
  PPDP_CHECK(before.size() == after.size()) << "centrality vectors differ in size";
  if (before.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < before.size(); ++i) total += std::fabs(before[i] - after[i]);
  return total / static_cast<double>(before.size());
}

}  // namespace ppdp::graph
