#ifndef PPDP_GRAPH_SOCIAL_GRAPH_H_
#define PPDP_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppdp::graph {

/// Node identifier.
using NodeId = uint32_t;

/// Categorical attribute value; kMissingAttribute marks "not published".
using AttributeValue = int32_t;

/// Class label of the sensitive (decision) attribute; kUnknownLabel marks a
/// label hidden from the attacker.
using Label = int32_t;

inline constexpr AttributeValue kMissingAttribute = -1;
inline constexpr Label kUnknownLabel = -1;

/// Metadata for one attribute category h_r in the dissertation's notation
/// (Definition 3.2.2): a name plus the number of distinct values users can
/// publish for it.
struct AttributeCategory {
  std::string name;
  int32_t num_values = 0;
};

/// An undirected attributed social graph G(V, E, X) (Definition 3.2.1).
///
/// Every node carries a vector of categorical attribute values (one slot per
/// category, kMissingAttribute when unpublished) and a class label for the
/// sensitive decision attribute. Edges are simple and undirected; the
/// structure supports the removal operations the sanitizers rely on.
class SocialGraph {
 public:
  /// Creates an empty graph over the given attribute schema and a sensitive
  /// decision attribute with `num_labels` possible class labels.
  SocialGraph(std::vector<AttributeCategory> categories, int32_t num_labels);

  /// Adds a node. `attributes` must have one entry per category, each in
  /// [0, num_values) or kMissingAttribute; `label` in [0, num_labels) or
  /// kUnknownLabel. Returns the new node's id.
  NodeId AddNode(std::vector<AttributeValue> attributes, Label label);

  /// Adds an undirected edge; ignores self-loops and duplicates. Returns
  /// true when an edge was actually inserted.
  bool AddEdge(NodeId u, NodeId v);

  /// Removes the edge if present; returns true when something was removed.
  bool RemoveEdge(NodeId u, NodeId v);

  bool HasEdge(NodeId u, NodeId v) const;

  size_t num_nodes() const { return attributes_.size(); }
  size_t num_edges() const { return num_edges_; }
  size_t num_categories() const { return categories_.size(); }
  int32_t num_labels() const { return num_labels_; }

  const std::vector<AttributeCategory>& categories() const { return categories_; }
  const std::vector<NodeId>& Neighbors(NodeId u) const;
  size_t Degree(NodeId u) const { return Neighbors(u).size(); }

  AttributeValue Attribute(NodeId u, size_t category) const;
  void SetAttribute(NodeId u, size_t category, AttributeValue value);

  Label GetLabel(NodeId u) const;
  void SetLabel(NodeId u, Label label);

  /// Marks every node's value for `category` as missing — the
  /// attribute-removal sanitization primitive.
  void MaskCategory(size_t category);

  /// Returns all edges as (u, v) pairs with u < v.
  std::vector<std::pair<NodeId, NodeId>> Edges() const;

  /// Number of attribute values the two nodes share across categories
  /// divided by u's published attribute count — the link weight W_{i,j} of
  /// Eq. (3.2)/(4.2). Returns 0 when u publishes nothing. Asymmetric by
  /// construction.
  double LinkWeight(NodeId u, NodeId v) const;

 private:
  void CheckNode(NodeId u) const;

  std::vector<AttributeCategory> categories_;
  int32_t num_labels_;
  std::vector<std::vector<AttributeValue>> attributes_;
  std::vector<Label> labels_;
  std::vector<std::vector<NodeId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace ppdp::graph

#endif  // PPDP_GRAPH_SOCIAL_GRAPH_H_
