#ifndef PPDP_GRAPH_CENTRALITY_H_
#define PPDP_GRAPH_CENTRALITY_H_

#include <vector>

#include "graph/social_graph.h"

namespace ppdp::graph {

/// Centrality measures for the chapter-4 structure-preservation goal
/// ("social network structure should be preserved such as node degree,
/// centrality, betweenness"). All run on unweighted shortest paths.

/// Degree centrality: degree(u) / (n - 1), in [0, 1].
std::vector<double> DegreeCentrality(const SocialGraph& g);

/// Closeness centrality: (reachable - 1) / Σ distances, scaled by the
/// reachable fraction (the Wasserman-Faust formula, well-defined on
/// disconnected graphs). Isolated nodes get 0.
std::vector<double> ClosenessCentrality(const SocialGraph& g);

/// Betweenness centrality via Brandes' algorithm (exact, O(V·E)),
/// undirected counting: each shortest path contributes to its interior
/// nodes; scores are halved to de-duplicate direction.
std::vector<double> BetweennessCentrality(const SocialGraph& g);

/// Mean absolute per-node difference of a centrality vector between two
/// same-sized graphs — a structure-disparity measurer M(G, G') usable for
/// the chapter-3 (ε)-utility condition (Definition 3.2.7(i)).
double CentralityDisparity(const std::vector<double>& before, const std::vector<double>& after);

}  // namespace ppdp::graph

#endif  // PPDP_GRAPH_CENTRALITY_H_
