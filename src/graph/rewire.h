#ifndef PPDP_GRAPH_REWIRE_H_
#define PPDP_GRAPH_REWIRE_H_

#include <cstddef>

#include "common/rng.h"
#include "graph/social_graph.h"

namespace ppdp::graph {

/// Degree-preserving randomization by double-edge swaps: repeatedly picks
/// two edges (a,b), (c,d) and rewires them to (a,d), (c,b) when that
/// creates no self-loop or duplicate. Every node keeps its exact degree
/// while label homophily and local structure wash out — the classical
/// graph-anonymization baseline (the "graph modification approaches" of the
/// survey the dissertation cites in Section 2.1) and a natural opponent for
/// the link sanitizers.
///
/// Attempts up to `swaps` swaps; returns the number actually performed.
size_t RewireEdges(SocialGraph& g, size_t swaps, Rng& rng);

/// Fraction of edges whose endpoints share a label — the homophily signal
/// the link-based attacks feed on; rewiring drives it toward the random
/// mixing baseline. Returns 0 on edgeless graphs.
double SameLabelEdgeFraction(const SocialGraph& g);

}  // namespace ppdp::graph

#endif  // PPDP_GRAPH_REWIRE_H_
