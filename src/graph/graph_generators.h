#ifndef PPDP_GRAPH_GRAPH_GENERATORS_H_
#define PPDP_GRAPH_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/social_graph.h"

namespace ppdp::graph {

/// Parameters of the synthetic attributed-social-graph generator used to
/// stand in for the dissertation's Facebook datasets (SNAP ego-Facebook,
/// Facebook100 Caltech and MIT). See DESIGN.md for the substitution
/// argument: the chapter-3/4 phenomena depend on (a) attribute→label
/// dependency structure, (b) label homophily along edges, and (c) class
/// imbalance — all planted explicitly here.
struct SyntheticGraphConfig {
  std::string name;
  size_t num_nodes = 0;
  size_t num_edges = 0;
  size_t num_categories = 0;        ///< condition attribute categories
  int32_t values_per_category = 4;  ///< base cardinality; varies ±1 by index
  int32_t num_labels = 2;           ///< decision-attribute cardinality
  double majority_fraction = 0.5;   ///< fraction of nodes holding label 0
  double homophily = 0.7;           ///< P(edge endpoint drawn from same label)
  /// Fraction of nodes whose edges are homophily-biased at all; the rest
  /// wire uniformly. Without this, high-degree nodes' neighbor-majority
  /// votes concentrate and a link-only attack becomes perfect — real
  /// networks mix homophilous and non-homophilous users, which is what caps
  /// LinkOnly accuracy in the dissertation's 0.6-0.8 band.
  double homophily_consistency = 0.4;
  size_t num_components = 1;        ///< planted connected components
  double missing_rate = 0.05;       ///< P(attribute unpublished)
  /// Per-category probability that a node's value is its label's preferred
  /// value (vs. uniform noise). Empty => a decaying profile is generated:
  /// the first few categories are strongly label-dependent, the tail is
  /// noise. This is what makes reducts strictly smaller than the full
  /// attribute set (Table 3.4).
  std::vector<double> dependency;
  /// Per-category probability that a node's value tracks its *category-0*
  /// value instead (rolled after the label dependency misses). Category 0
  /// plays the role of the designated utility attribute in the chapter-3
  /// experiments; this second dependency axis is what makes the
  /// utility-dependent attribute set differ from the privacy-dependent one
  /// (Table 3.6's PDA/UDA/Core structure). Empty => a default profile with
  /// a utility-leaning middle third.
  std::vector<double> utility_dependency;
  /// Probability that a fill edge closes a triangle (friend-of-friend)
  /// instead of landing on a random node. Raises clustering and diameter
  /// toward the values of Table 3.3's real graphs.
  double triadic_closure = 0.3;
  /// Probability that a non-triadic fill edge stays within the local window
  /// of a ring layout (small-world wiring); the complement creates rare
  /// long-range shortcuts. High locality is what gives the real datasets
  /// their 6-10 hop diameters despite high average degree.
  double locality = 0.998;
  /// Local window half-width as a fraction of the giant component.
  double locality_window = 0.025;
  uint64_t seed = 1;
};

/// Generates a graph from `config`. Each planted component is connected (a
/// random spanning tree is laid down first); remaining edge budget is
/// distributed proportionally to component size and filled with
/// homophily-biased random pairs.
SocialGraph GenerateSyntheticGraph(const SyntheticGraphConfig& config);

/// SNAP ego-Facebook analogue: 792 nodes, 14 024 edges, 20 attribute
/// categories, binary sensitive label (gender) with a 65 % majority class,
/// 10 components. `scale` multiplies node/edge counts (min 40 nodes).
SyntheticGraphConfig SnapLikeConfig(double scale = 1.0, uint64_t seed = 7);

/// Facebook100 Caltech analogue: 769 nodes, 16 656 edges, 7 categories,
/// 4-valued sensitive label (status flag) with a 72 % majority, 4 components.
SyntheticGraphConfig CaltechLikeConfig(double scale = 1.0, uint64_t seed = 11);

/// Facebook100 MIT analogue: 6 440 nodes, 251 252 edges, 7 categories,
/// 7-valued sensitive label with a 67 % majority, 18 components. Benches
/// default to scale < 1 so single-core runs finish; they report the scale.
SyntheticGraphConfig MitLikeConfig(double scale = 1.0, uint64_t seed = 13);

}  // namespace ppdp::graph

#endif  // PPDP_GRAPH_GRAPH_GENERATORS_H_
