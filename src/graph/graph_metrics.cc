#include "graph/graph_metrics.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace ppdp::graph {

namespace {

constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();

/// BFS distances from `source`; unreachable nodes get SIZE_MAX.
std::vector<size_t> BfsDistances(const SocialGraph& g, NodeId source) {
  std::vector<size_t> dist(g.num_nodes(), std::numeric_limits<size_t>::max());
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : g.Neighbors(u)) {
      if (dist[v] != std::numeric_limits<size_t>::max()) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

}  // namespace

uint32_t Components::LargestId() const {
  PPDP_CHECK(!sizes.empty()) << "no components in empty graph";
  uint32_t best = 0;
  for (uint32_t i = 1; i < sizes.size(); ++i) {
    if (sizes[i] > sizes[best]) best = i;
  }
  return best;
}

Components FindComponents(const SocialGraph& g) {
  Components comps;
  comps.component_of.assign(g.num_nodes(), kUnassigned);
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (comps.component_of[start] != kUnassigned) continue;
    uint32_t id = static_cast<uint32_t>(comps.sizes.size());
    comps.sizes.push_back(0);
    std::deque<NodeId> queue{start};
    comps.component_of[start] = id;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      ++comps.sizes[id];
      for (NodeId v : g.Neighbors(u)) {
        if (comps.component_of[v] != kUnassigned) continue;
        comps.component_of[v] = id;
        queue.push_back(v);
      }
    }
  }
  return comps;
}

ComponentStats StatsForComponent(const SocialGraph& g, const Components& comps, uint32_t id) {
  ComponentStats stats;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (comps.component_of[u] != id) continue;
    ++stats.nodes;
    for (NodeId v : g.Neighbors(u)) {
      if (u < v && comps.component_of[v] == id) ++stats.edges;
    }
  }
  return stats;
}

size_t Eccentricity(const SocialGraph& g, NodeId source) {
  std::vector<size_t> dist = BfsDistances(g, source);
  size_t ecc = 0;
  for (size_t d : dist) {
    if (d != std::numeric_limits<size_t>::max()) ecc = std::max(ecc, d);
  }
  return ecc;
}

size_t ApproxDiameter(const SocialGraph& g, size_t sweeps) {
  if (g.num_nodes() == 0) return 0;
  Components comps = FindComponents(g);
  uint32_t giant = comps.LargestId();
  // Start from the lowest-id node of the giant component, then repeatedly
  // jump to the farthest node found (double sweep).
  NodeId start = 0;
  while (comps.component_of[start] != giant) ++start;
  size_t best = 0;
  NodeId cursor = start;
  for (size_t round = 0; round < sweeps; ++round) {
    std::vector<size_t> dist = BfsDistances(g, cursor);
    NodeId farthest = cursor;
    size_t far_dist = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == std::numeric_limits<size_t>::max()) continue;
      if (dist[u] > far_dist) {
        far_dist = dist[u];
        farthest = u;
      }
    }
    best = std::max(best, far_dist);
    if (farthest == cursor) break;
    cursor = farthest;
  }
  return best;
}

size_t SharedFriends(const SocialGraph& g, NodeId u, NodeId v) {
  const auto& nu = g.Neighbors(u);
  const auto& nv = g.Neighbors(v);
  const auto& smaller = nu.size() <= nv.size() ? nu : nv;
  NodeId other = nu.size() <= nv.size() ? v : u;
  size_t shared = 0;
  for (NodeId w : smaller) {
    if (w != u && w != v && g.HasEdge(w, other)) ++shared;
  }
  return shared;
}

double ClusteringCoefficient(const SocialGraph& g, NodeId u) {
  const auto& neighbors = g.Neighbors(u);
  size_t k = neighbors.size();
  if (k < 2) return 0.0;
  size_t closed = 0;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (g.HasEdge(neighbors[i], neighbors[j])) ++closed;
    }
  }
  return 2.0 * static_cast<double>(closed) / (static_cast<double>(k) * static_cast<double>(k - 1));
}

double AverageClustering(const SocialGraph& g) {
  if (g.num_nodes() == 0) return 0.0;
  double total = 0.0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) total += ClusteringCoefficient(g, u);
  return total / static_cast<double>(g.num_nodes());
}

std::vector<size_t> DegreeHistogram(const SocialGraph& g) {
  size_t max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) max_degree = std::max(max_degree, g.Degree(u));
  std::vector<size_t> histogram(max_degree + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) ++histogram[g.Degree(u)];
  return histogram;
}

}  // namespace ppdp::graph
