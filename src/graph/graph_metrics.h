#ifndef PPDP_GRAPH_GRAPH_METRICS_H_
#define PPDP_GRAPH_GRAPH_METRICS_H_

#include <cstddef>
#include <vector>

#include "graph/social_graph.h"

namespace ppdp::graph {

/// Connected-component decomposition: component id per node plus sizes.
struct Components {
  std::vector<uint32_t> component_of;  // node -> component id
  std::vector<size_t> sizes;           // component id -> node count
  size_t num_components() const { return sizes.size(); }
  /// Id of the largest component (ties toward the lower id).
  uint32_t LargestId() const;
};

/// Labels connected components with BFS.
Components FindComponents(const SocialGraph& g);

/// Node and edge counts restricted to one component.
struct ComponentStats {
  size_t nodes = 0;
  size_t edges = 0;
};
ComponentStats StatsForComponent(const SocialGraph& g, const Components& comps, uint32_t id);

/// BFS eccentricity of `source` (max finite distance).
size_t Eccentricity(const SocialGraph& g, NodeId source);

/// Lower-bounds the diameter of the largest component with `sweeps` rounds
/// of the double-sweep heuristic (exact on trees, near-exact on social
/// graphs). Table 3.3's "diameter longest shortest path" row is reported
/// with this estimator.
size_t ApproxDiameter(const SocialGraph& g, size_t sweeps = 4);

/// Number of common neighbors — the Ch.4 structure-utility value S_j of a
/// friend (Definition 4.4.2 instantiates structure utility as shared
/// friends).
size_t SharedFriends(const SocialGraph& g, NodeId u, NodeId v);

/// Local clustering coefficient of u in [0, 1].
double ClusteringCoefficient(const SocialGraph& g, NodeId u);

/// Average of local clustering coefficients over all nodes.
double AverageClustering(const SocialGraph& g);

/// Histogram of node degrees (index = degree).
std::vector<size_t> DegreeHistogram(const SocialGraph& g);

}  // namespace ppdp::graph

#endif  // PPDP_GRAPH_GRAPH_METRICS_H_
