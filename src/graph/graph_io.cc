#include "graph/graph_io.h"

#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"
#include "fault/fault.h"

namespace ppdp::graph {

namespace {

using Rows = std::vector<std::vector<std::string>>;

Result<int64_t> ParseInt(const std::string& cell) {
  if (cell.empty()) return Status::InvalidArgument("empty integer cell");
  errno = 0;
  char* end = nullptr;
  int64_t v = std::strtoll(cell.c_str(), &end, 10);
  if (errno == ERANGE) {
    // strtoll silently clamps out-of-range values; a later narrowing cast
    // would turn the clamp into an arbitrary int32, so refuse here.
    return Status::InvalidArgument("integer out of range: '" + cell + "'");
  }
  if (end == nullptr || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + cell + "'");
  }
  return v;
}

/// Upper bound on schema cardinalities (labels, per-category values): far
/// above any real dataset, low enough that hostile input cannot request
/// multi-gigabyte allocations.
constexpr int64_t kMaxCardinality = 1 << 20;

/// Shared builder behind LoadGraph and ParseGraphCsv: validates every cell
/// against the schema so untrusted rows can never reach a PPDP_CHECK abort
/// inside SocialGraph (the ctor requires num_values >= 1, AddNode requires
/// labels/attributes in range).
Result<SocialGraph> BuildGraph(const Rows& schema_rows, const Rows& node_rows,
                               const Rows& edge_rows) {
  if (schema_rows.size() < 2) return Status::InvalidArgument("schema file too short");

  int32_t num_labels = 0;
  std::vector<AttributeCategory> categories;
  for (size_t r = 1; r < schema_rows.size(); ++r) {
    const auto& row = schema_rows[r];
    if (row.size() != 3) return Status::InvalidArgument("schema row needs 3 cells");
    PPDP_ASSIGN_OR_RETURN(int64_t count, ParseInt(row[2]));
    if (count < 1 || count > kMaxCardinality) {
      return Status::InvalidArgument("schema cardinality out of range: " + row[2]);
    }
    if (row[0] == "labels") {
      num_labels = static_cast<int32_t>(count);
    } else {
      categories.push_back({row[1], static_cast<int32_t>(count)});
    }
  }
  if (num_labels < 2) return Status::InvalidArgument("schema is missing the labels row");

  SocialGraph g(categories, num_labels);

  if (node_rows.empty()) return Status::InvalidArgument("empty nodes file");
  for (size_t r = 1; r < node_rows.size(); ++r) {
    const auto& row = node_rows[r];
    if (row.size() != 2 + categories.size()) {
      return Status::InvalidArgument("nodes row " + std::to_string(r) + " has wrong width");
    }
    Label label = kUnknownLabel;
    if (!row[1].empty()) {
      PPDP_ASSIGN_OR_RETURN(int64_t y, ParseInt(row[1]));
      if (y < 0 || y >= num_labels) {
        return Status::InvalidArgument("node label out of range: " + row[1]);
      }
      label = static_cast<Label>(y);
    }
    std::vector<AttributeValue> attrs(categories.size(), kMissingAttribute);
    for (size_t c = 0; c < categories.size(); ++c) {
      if (row[2 + c].empty()) continue;
      PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[2 + c]));
      if (v < 0 || v >= categories[c].num_values) {
        return Status::InvalidArgument("attribute value out of range for category " +
                                       categories[c].name + ": " + row[2 + c]);
      }
      attrs[c] = static_cast<AttributeValue>(v);
    }
    g.AddNode(std::move(attrs), label);
  }

  for (size_t r = 1; r < edge_rows.size(); ++r) {
    const auto& row = edge_rows[r];
    if (row.size() != 2) return Status::InvalidArgument("edges row needs 2 cells");
    PPDP_ASSIGN_OR_RETURN(int64_t u, ParseInt(row[0]));
    PPDP_ASSIGN_OR_RETURN(int64_t v, ParseInt(row[1]));
    if (u < 0 || v < 0 || static_cast<size_t>(u) >= g.num_nodes() ||
        static_cast<size_t>(v) >= g.num_nodes()) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    g.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return g;
}

}  // namespace

Status SaveGraph(const SocialGraph& g, const std::string& base_path) {
  {
    Table schema({"category", "name", "num_values"});
    schema.AddRow({"labels", "decision", std::to_string(g.num_labels())});
    for (size_t c = 0; c < g.num_categories(); ++c) {
      schema.AddRow({std::to_string(c), g.categories()[c].name,
                     std::to_string(g.categories()[c].num_values)});
    }
    PPDP_RETURN_IF_ERROR(schema.WriteCsv(base_path + ".schema.csv"));
  }
  {
    std::vector<std::string> columns = {"node", "label"};
    for (const auto& cat : g.categories()) columns.push_back(cat.name);
    Table nodes(columns);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      std::vector<std::string> row = {std::to_string(u)};
      Label y = g.GetLabel(u);
      row.push_back(y == kUnknownLabel ? "" : std::to_string(y));
      for (size_t c = 0; c < g.num_categories(); ++c) {
        AttributeValue v = g.Attribute(u, c);
        row.push_back(v == kMissingAttribute ? "" : std::to_string(v));
      }
      nodes.AddRow(std::move(row));
    }
    PPDP_RETURN_IF_ERROR(nodes.WriteCsv(base_path + ".nodes.csv"));
  }
  {
    Table edges({"u", "v"});
    for (const auto& [u, v] : g.Edges()) {
      edges.AddRow({std::to_string(u), std::to_string(v)});
    }
    PPDP_RETURN_IF_ERROR(edges.WriteCsv(base_path + ".edges.csv"));
  }
  return Status::Ok();
}

Result<SocialGraph> LoadGraph(const std::string& base_path) {
  // CSV I/O failure point: a fired drop models a torn/unreadable file and
  // surfaces as kUnavailable so callers can retry the load as a unit.
  fault::FaultDecision fault_decision = PPDP_FAULT_POINT("io.csv.read", fault::kMaskDrop);
  if (fault_decision.drop()) return fault_decision.AsStatus("io.csv.read");
  PPDP_ASSIGN_OR_RETURN(auto schema_rows, ReadCsv(base_path + ".schema.csv"));
  PPDP_ASSIGN_OR_RETURN(auto node_rows, ReadCsv(base_path + ".nodes.csv"));
  PPDP_ASSIGN_OR_RETURN(auto edge_rows, ReadCsv(base_path + ".edges.csv"));
  return BuildGraph(schema_rows, node_rows, edge_rows);
}

Result<SocialGraph> ParseGraphCsv(const std::string& schema_csv, const std::string& nodes_csv,
                                  const std::string& edges_csv) {
  PPDP_ASSIGN_OR_RETURN(auto schema_rows, ParseCsv(schema_csv));
  PPDP_ASSIGN_OR_RETURN(auto node_rows, ParseCsv(nodes_csv));
  PPDP_ASSIGN_OR_RETURN(auto edge_rows, ParseCsv(edges_csv));
  return BuildGraph(schema_rows, node_rows, edge_rows);
}

}  // namespace ppdp::graph
