#include "graph/graph_generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace ppdp::graph {

namespace {

/// Preferred attribute value of `label` in a category with `num_values`
/// values. Distinct labels prefer distinct values (mod cardinality), so a
/// strongly dependent category is predictive of the label.
AttributeValue PreferredValue(Label label, size_t category, int32_t num_values) {
  return static_cast<AttributeValue>((static_cast<size_t>(label) * 7 + category * 3 + 1) %
                                     static_cast<size_t>(num_values));
}

/// Default dependency profile: the first third of categories are moderately
/// label-dependent (0.5 decaying), the rest are weakly dependent noise. The
/// levels are calibrated so attribute-based attacks land in the 0.55-0.8
/// accuracy band the dissertation reports (Figs 3.2-3.4), leaving room for
/// sanitization to visibly degrade them.
std::vector<double> DefaultDependency(size_t num_categories) {
  std::vector<double> dep(num_categories);
  size_t strong = std::max<size_t>(2, num_categories / 3);
  for (size_t c = 0; c < num_categories; ++c) {
    if (c < strong) {
      dep[c] = 0.5 - 0.05 * static_cast<double>(c);
    } else {
      dep[c] = 0.08;
    }
    dep[c] = std::clamp(dep[c], 0.05, 0.95);
  }
  return dep;
}

/// Default utility-dependency profile: the middle third of categories track
/// the category-0 value, the rest barely do.
std::vector<double> DefaultUtilityDependency(size_t num_categories) {
  std::vector<double> udep(num_categories, 0.05);
  if (num_categories < 3) return udep;
  size_t begin = num_categories / 3;
  size_t end = std::min(num_categories, 2 * num_categories / 3 + 1);
  for (size_t c = begin; c < end; ++c) udep[c] = 0.45;
  udep[0] = 0.0;  // the anchor cannot depend on itself
  return udep;
}

}  // namespace

SocialGraph GenerateSyntheticGraph(const SyntheticGraphConfig& config) {
  PPDP_CHECK(config.num_nodes >= 2) << "graph needs at least two nodes";
  PPDP_CHECK(config.num_labels >= 2);
  PPDP_CHECK(config.num_components >= 1);
  PPDP_CHECK(config.majority_fraction > 0.0 && config.majority_fraction < 1.0);

  Rng rng(config.seed);

  std::vector<AttributeCategory> categories;
  categories.reserve(config.num_categories);
  for (size_t c = 0; c < config.num_categories; ++c) {
    AttributeCategory cat;
    cat.name = "h" + std::to_string(c + 1);
    cat.num_values = config.values_per_category + static_cast<int32_t>(c % 3) - 1;
    cat.num_values = std::max<int32_t>(2, cat.num_values);
    // Category 0 anchors the utility-dependency hierarchy and doubles as the
    // designated utility attribute in the chapter-3/4 experiments; a small
    // cardinality (like the paper's "education type" / "gender") keeps the
    // utility prediction task comparable in difficulty to the privacy one.
    if (c == 0) cat.num_values = 4;
    categories.push_back(cat);
  }

  std::vector<double> dependency =
      config.dependency.empty() ? DefaultDependency(config.num_categories) : config.dependency;
  PPDP_CHECK(dependency.size() == config.num_categories);
  std::vector<double> utility_dependency = config.utility_dependency.empty()
                                               ? DefaultUtilityDependency(config.num_categories)
                                               : config.utility_dependency;
  PPDP_CHECK(utility_dependency.size() == config.num_categories);

  SocialGraph g(categories, config.num_labels);

  // --- Labels: one majority class, the rest uniform. -----------------------
  std::vector<Label> labels(config.num_nodes);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    if (rng.Bernoulli(config.majority_fraction) || config.num_labels == 1) {
      labels[i] = 0;
    } else {
      labels[i] = 1 + static_cast<Label>(rng.Uniform(static_cast<uint64_t>(config.num_labels - 1)));
    }
  }

  // --- Attributes ----------------------------------------------------------
  // Plain categories: label-preferred with prob dependency[c], else uniform.
  // Hierarchical (utility-dependent) categories encode two signals at two
  // granularities, mirroring the semantic hierarchies behind Algorithm 3
  // ("Star Wars" -> "Fantasy" -> "American film"): the coarse value group
  // tracks the category-0 (utility) value, the fine offset within the group
  // tracks the sensitive label. Numeric generalization (Algorithm 4) at a
  // group-aligned level therefore erases the label signal while keeping the
  // utility signal — the property the collective method exploits.
  constexpr int32_t kFineGranularity = 3;
  constexpr double kFineLabelDependency = 0.45;
  for (size_t i = 0; i < config.num_nodes; ++i) {
    std::vector<AttributeValue> attrs(config.num_categories);
    for (size_t c = 0; c < config.num_categories; ++c) {
      if (rng.Bernoulli(config.missing_rate)) {
        attrs[c] = kMissingAttribute;
        continue;
      }
      const int32_t num_values = categories[c].num_values;
      if (c > 0 && utility_dependency[c] >= 0.2 && attrs[0] != kMissingAttribute &&
          num_values >= 2 * kFineGranularity) {
        int32_t groups = num_values / kFineGranularity;
        int32_t group = rng.Bernoulli(utility_dependency[c])
                            ? PreferredValue(attrs[0], c + 17, groups)
                            : static_cast<int32_t>(rng.Uniform(static_cast<uint64_t>(groups)));
        int32_t fine = rng.Bernoulli(kFineLabelDependency)
                           ? labels[i] % kFineGranularity
                           : static_cast<int32_t>(
                                 rng.Uniform(static_cast<uint64_t>(kFineGranularity)));
        attrs[c] = std::min(group * kFineGranularity + fine, num_values - 1);
      } else if (rng.Bernoulli(dependency[c])) {
        attrs[c] = PreferredValue(labels[i], c, num_values);
      } else {
        attrs[c] =
            static_cast<AttributeValue>(rng.Uniform(static_cast<uint64_t>(num_values)));
      }
    }
    g.AddNode(std::move(attrs), labels[i]);
  }

  // --- Components: one giant (~97 % of nodes) plus small satellites. -------
  size_t satellites = config.num_components - 1;
  size_t satellite_total = std::min(config.num_nodes / 4, std::max<size_t>(satellites * 2,
                                    static_cast<size_t>(0.025 * static_cast<double>(config.num_nodes))));
  std::vector<std::vector<NodeId>> members(config.num_components);
  {
    std::vector<NodeId> order(config.num_nodes);
    for (NodeId i = 0; i < config.num_nodes; ++i) order[i] = i;
    rng.Shuffle(order);
    size_t cursor = 0;
    for (size_t s = 0; s < satellites; ++s) {
      size_t size = std::max<size_t>(2, satellite_total / std::max<size_t>(1, satellites));
      for (size_t k = 0; k < size && cursor < config.num_nodes - 2; ++k) {
        members[s + 1].push_back(order[cursor++]);
      }
    }
    while (cursor < config.num_nodes) members[0].push_back(order[cursor++]);
  }

  // --- Edges: spanning tree per component, then homophily-biased fill. -----
  size_t tree_edges = 0;
  for (const auto& comp : members) {
    if (comp.size() >= 2) tree_edges += comp.size() - 1;
  }
  size_t budget = std::max(config.num_edges, tree_edges);

  // Satellites get random recursive trees; the giant component is chained
  // along its (shuffled) ring positions so connectivity itself adds no
  // long-range shortcuts — locality below controls the diameter.
  for (size_t m = 1; m < members.size(); ++m) {
    const auto& comp = members[m];
    for (size_t k = 1; k < comp.size(); ++k) {
      NodeId parent = comp[rng.Uniform(k)];
      g.AddEdge(comp[k], parent);
    }
  }
  for (size_t k = 1; k < members[0].size(); ++k) {
    g.AddEdge(members[0][k], members[0][k - 1]);
  }

  // Remaining edges go to the giant component (satellites stay sparse, as in
  // the real datasets where satellites are tiny fragments). Only the
  // "consistent" nodes wire homophilously; the rest wire uniformly, which
  // keeps the link-only attack in a realistic accuracy band.
  const auto& giant = members[0];
  std::vector<std::vector<NodeId>> by_label(static_cast<size_t>(config.num_labels));
  for (NodeId u : giant) by_label[static_cast<size_t>(labels[u])].push_back(u);
  std::vector<bool> consistent(config.num_nodes, false);
  for (size_t i = 0; i < config.num_nodes; ++i) {
    consistent[i] = rng.Bernoulli(config.homophily_consistency);
  }

  // Ring layout over the giant component for small-world locality.
  std::vector<size_t> position(config.num_nodes, 0);
  for (size_t idx = 0; idx < giant.size(); ++idx) position[giant[idx]] = idx;
  const size_t window = std::max<size_t>(
      4, static_cast<size_t>(config.locality_window * static_cast<double>(giant.size())));
  auto local_pick = [&](NodeId u) {
    int64_t offset = rng.UniformInt(-static_cast<int64_t>(window), static_cast<int64_t>(window));
    size_t q = (position[u] + giant.size() + static_cast<size_t>(offset + static_cast<int64_t>(giant.size()))) %
               giant.size();
    return giant[q];
  };

  size_t remaining = budget - g.num_edges();
  size_t attempts = 0;
  const size_t max_attempts = remaining * 50 + 1000;
  while (remaining > 0 && attempts < max_attempts) {
    ++attempts;
    NodeId u = giant[rng.Uniform(giant.size())];
    NodeId v;
    const auto& same = by_label[static_cast<size_t>(labels[u])];
    if (rng.Bernoulli(config.triadic_closure) && g.Degree(u) >= 1) {
      // Friend-of-friend: close a triangle, which localizes the graph and
      // lifts clustering toward the real datasets' values.
      const auto& friends = g.Neighbors(u);
      NodeId w = friends[rng.Uniform(friends.size())];
      const auto& friends_of_friend = g.Neighbors(w);
      v = friends_of_friend[rng.Uniform(friends_of_friend.size())];
    } else if (rng.Bernoulli(config.locality)) {
      // Local window pick; homophilous (consistent) users retry a few times
      // for a same-label neighbor, which preserves the planted label signal
      // without long-range shortcuts.
      v = local_pick(u);
      if (consistent[u]) {
        for (int retry = 0; retry < 4 && labels[v] != labels[u]; ++retry) v = local_pick(u);
      }
    } else if (consistent[u] && rng.Bernoulli(config.homophily) && same.size() >= 2) {
      v = same[rng.Uniform(same.size())];
    } else {
      v = giant[rng.Uniform(giant.size())];
    }
    if (g.AddEdge(u, v)) --remaining;
  }

  return g;
}

SyntheticGraphConfig SnapLikeConfig(double scale, uint64_t seed) {
  PPDP_CHECK(scale > 0.0);
  SyntheticGraphConfig c;
  c.name = "SNAP";
  c.num_nodes = std::max<size_t>(40, static_cast<size_t>(std::lround(792.0 * scale)));
  c.num_edges = std::max<size_t>(80, static_cast<size_t>(std::lround(14024.0 * scale)));
  c.num_categories = 20;
  c.values_per_category = 13;
  c.num_labels = 2;
  c.majority_fraction = 0.65;
  c.homophily = 0.72;
  c.homophily_consistency = 0.35;
  c.num_components = scale >= 0.5 ? 10 : 3;
  c.missing_rate = 0.06;
  c.seed = seed;
  return c;
}

SyntheticGraphConfig CaltechLikeConfig(double scale, uint64_t seed) {
  PPDP_CHECK(scale > 0.0);
  SyntheticGraphConfig c;
  c.name = "Caltech";
  c.num_nodes = std::max<size_t>(40, static_cast<size_t>(std::lround(769.0 * scale)));
  c.num_edges = std::max<size_t>(80, static_cast<size_t>(std::lround(16656.0 * scale)));
  c.num_categories = 7;
  c.values_per_category = 13;
  c.num_labels = 4;
  c.majority_fraction = 0.72;
  c.homophily = 0.75;
  c.homophily_consistency = 0.45;
  c.num_components = scale >= 0.5 ? 4 : 2;
  c.missing_rate = 0.05;
  c.seed = seed;
  return c;
}

SyntheticGraphConfig MitLikeConfig(double scale, uint64_t seed) {
  PPDP_CHECK(scale > 0.0);
  SyntheticGraphConfig c;
  c.name = "MIT";
  c.num_nodes = std::max<size_t>(60, static_cast<size_t>(std::lround(6440.0 * scale)));
  c.num_edges = std::max<size_t>(120, static_cast<size_t>(std::lround(251252.0 * scale)));
  c.num_categories = 7;
  c.values_per_category = 13;
  c.num_labels = 7;
  c.majority_fraction = 0.67;
  c.homophily = 0.7;
  c.homophily_consistency = 0.4;
  c.num_components = scale >= 0.5 ? 18 : 3;
  c.missing_rate = 0.05;
  c.seed = seed;
  return c;
}

}  // namespace ppdp::graph
