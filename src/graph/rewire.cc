#include "graph/rewire.h"

#include "common/logging.h"

namespace ppdp::graph {

size_t RewireEdges(SocialGraph& g, size_t swaps, Rng& rng) {
  auto edges = g.Edges();
  if (edges.size() < 2) return 0;
  size_t performed = 0;
  size_t attempts = 0;
  const size_t max_attempts = swaps * 20 + 100;
  while (performed < swaps && attempts < max_attempts) {
    ++attempts;
    size_t i = rng.Uniform(edges.size());
    size_t j = rng.Uniform(edges.size());
    if (i == j) continue;
    auto [a, b] = edges[i];
    auto [c, d] = edges[j];
    // Candidate rewiring (a,d), (c,b); reject degenerate or conflicting.
    if (a == d || c == b || a == c || b == d) continue;
    if (g.HasEdge(a, d) || g.HasEdge(c, b)) continue;
    PPDP_CHECK(g.RemoveEdge(a, b));
    PPDP_CHECK(g.RemoveEdge(c, d));
    PPDP_CHECK(g.AddEdge(a, d));
    PPDP_CHECK(g.AddEdge(c, b));
    edges[i] = {std::min(a, d), std::max(a, d)};
    edges[j] = {std::min(c, b), std::max(c, b)};
    ++performed;
  }
  return performed;
}

double SameLabelEdgeFraction(const SocialGraph& g) {
  size_t same = 0;
  size_t labeled = 0;
  for (const auto& [u, v] : g.Edges()) {
    Label yu = g.GetLabel(u);
    Label yv = g.GetLabel(v);
    if (yu == kUnknownLabel || yv == kUnknownLabel) continue;
    ++labeled;
    if (yu == yv) ++same;
  }
  return labeled == 0 ? 0.0 : static_cast<double>(same) / static_cast<double>(labeled);
}

}  // namespace ppdp::graph
