// ppdp_serve — the publishing daemon. Loads the graph/genome corpora once,
// then serves POST /v1/publish, /v1/audit and /v1/dp/aggregate (JSON bodies)
// plus the usual introspection endpoints on 127.0.0.1.
//
//   ppdp_serve --port 8080 --tenant_budget 4.0
//   curl -s -XPOST localhost:8080/v1/publish \
//     -d '{"tenant":"acme","kind":"social","epsilon":0.5}'
//
// Flags (all optional):
//   --port N              bind port; 0 = ephemeral, printed at startup (0)
//   --http_max_conns N    concurrent connection cap (32)
//   --max_body_bytes N    413 threshold for request bodies (1048576)
//   --graph_scale X       Caltech-like corpus scale (0.25)
//   --genome_snps N       synthetic GWAS catalog width (300)
//   --seed N              corpus + DP noise base seed (7)
//   --threads N           exec width: 0 = all cores, 1 = serial (0)
//   --tenant_budget X     ε budget per tenant ledger (4.0)
//   --max_tenants N       tenant registry cap (64)
//   --max_pending N       admission queue bound; 429 beyond (64)
//   --coalesce_window_ms X  publish batching window (5)
//   --drain_timeout_s X   graceful-shutdown drain bound (10)
//   --ledger_wal PATH     privacy-ledger write-ahead log; spends are logged
//                         before admission and replayed at startup so
//                         remaining-ε survives restarts (off: in-memory)
//   --ledger_sync P       WAL fsync policy: always | batch (always)
//   --request_deadline_s X  cap on client-declared "deadline_ms"; expired
//                         requests get 504 (30)
//   --access_log PATH     JSONL access log (ppdp.access.v1, one object per
//                         request, per-stage micros); off when empty
//   --access_log_max_mb X access-log size rotation threshold (64)
//   --slow_request_ms X   capture requests at/above this wall time in the
//                         FlightRecorder ring; 0 = off (0)
//   --slo_config PATH     ppdp.slo.v1 alert-rule config; empty = built-in
//                         defaults (availability, latency p99, queue
//                         pressure, per-tenant ledger burn)
//   --alert_log PATH      JSONL alert-transition log (ppdp.alertlog.v1);
//                         off when empty
//   --alert_log_max_mb X  alert-log size rotation threshold (16)
//   --slo_eval_period_s X request-path alert evaluation throttle; /alertz
//                         and /sloz always evaluate on read (1)
//   --log_level L         debug|info|warn|error|off (info)
//
// SIGTERM / SIGINT drain in-flight requests (new ones get 503), stop the
// server, and exit 0.

#include <csignal>
#include <chrono>
#include <iostream>
#include <thread>

#include "common/flags.h"
#include "exec/thread_pool.h"
#include "obs/log.h"
#include "serve/serve_app.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace ppdp;

  Flags flags(argc, argv);
  if (!obs::InitLoggingFromFlags(flags)) {
    std::cerr << "warning: unknown --log_level ignored (want debug|info|warn|error|off)\n";
  }

  serve::ServeOptions options;
  options.port = static_cast<int>(flags.GetInt("port", options.port));
  options.http_max_conns =
      static_cast<int>(flags.GetInt("http_max_conns", options.http_max_conns));
  options.max_request_body_bytes = static_cast<size_t>(
      flags.GetInt("max_body_bytes", static_cast<int64_t>(options.max_request_body_bytes)));
  options.graph_scale = flags.GetDouble("graph_scale", options.graph_scale);
  options.genome_snps =
      static_cast<size_t>(flags.GetInt("genome_snps", static_cast<int64_t>(options.genome_snps)));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  options.tenant_budget = flags.GetDouble("tenant_budget", options.tenant_budget);
  options.max_tenants =
      static_cast<size_t>(flags.GetInt("max_tenants", static_cast<int64_t>(options.max_tenants)));
  options.max_pending = static_cast<int>(flags.GetInt("max_pending", options.max_pending));
  options.coalesce_window_seconds = flags.GetDouble("coalesce_window_ms", 5.0) / 1000.0;
  options.drain_timeout_seconds = flags.GetDouble("drain_timeout_s", 10.0);
  options.ledger_wal = flags.GetString("ledger_wal", "");
  options.request_deadline_seconds = flags.GetDouble("request_deadline_s", 30.0);
  options.access_log = flags.GetString("access_log", "");
  options.access_log_max_mb = flags.GetDouble("access_log_max_mb", options.access_log_max_mb);
  options.slow_request_ms = flags.GetDouble("slow_request_ms", options.slow_request_ms);
  options.slo_config = flags.GetString("slo_config", "");
  options.alert_log = flags.GetString("alert_log", "");
  options.alert_log_max_mb = flags.GetDouble("alert_log_max_mb", options.alert_log_max_mb);
  options.slo_eval_period_seconds =
      flags.GetDouble("slo_eval_period_s", options.slo_eval_period_seconds);
  Result<obs::LedgerWal::SyncPolicy> sync_policy =
      obs::ParseSyncPolicy(flags.GetString("ledger_sync", "always"));
  if (!sync_policy.ok()) {
    std::cerr << "ppdp_serve: " << sync_policy.status().ToString() << "\n";
    return 1;
  }
  options.ledger_sync = *sync_policy;

  Status pool_status = exec::ThreadPool::SetGlobalThreads(options.threads);
  if (!pool_status.ok()) {
    std::cerr << "warning: --threads rejected: " << pool_status.ToString()
              << "; falling back to hardware concurrency\n";
    options.threads = 0;
  }

  Result<std::unique_ptr<serve::ServeApp>> app = serve::ServeApp::Create(options);
  if (!app.ok()) {
    std::cerr << "ppdp_serve: " << app.status().ToString() << "\n";
    return 1;
  }
  Status started = (*app)->Start();
  if (!started.ok()) {
    std::cerr << "ppdp_serve: " << started.ToString() << "\n";
    return 1;
  }
  // One structured line an operator (or the smoke job) can grep: what was
  // loaded, and how much spent-ε the WAL carried across the restart.
  std::cout << "(startup: " << (*app)->StartupSummary().Dump() << ")" << std::endl;
  // Flushed immediately so a supervising process (the CI smoke job) can
  // grep the resolved ephemeral port while the daemon runs.
  std::cout << "(serving: http://127.0.0.1:" << (*app)->port() << "/)" << std::endl;

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::cout << "(draining)" << std::endl;
  (*app)->Stop();
  std::cout << "(stopped)" << std::endl;
  return 0;
}
