// Alert-log validator/aggregator and offline SLO-attainment gate.
//
//   $ ppdp_slostat alerts.jsonl                   # validate + aggregate
//   $ ppdp_slostat --validate_only alerts.jsonl   # schema check only
//   $ ppdp_slostat access.jsonl                   # offline SLO attainment
//   $ ppdp_slostat --slo_config slo.json access.jsonl
//
// The input schema is auto-detected from the first record:
//
//   ppdp.alertlog.v1 (ppdp_serve --alert_log): every record is validated
//   (schema tag, legal pending->firing->resolved transition pair,
//   non-decreasing timestamps per alert instance), then a per-instance
//   summary is printed: transitions, times fired, total seconds spent in
//   the firing state.
//
//   ppdp.access.v1 (ppdp_serve --access_log / bench_serve): the requests
//   are replayed against the availability and latency rules of
//   --slo_config (or the built-in defaults) over the whole log — the
//   offline "did we attain the SLO" verdict; --objective_only rules of
//   other signals are skipped since the access log cannot answer them.
//
// Flags:
//   --slo_config PATH  ppdp.slo.v1 rules for attainment mode (default:
//                      built-in defaults)
//   --validate_only    (off) validate records and exit
//
// Exit codes: 0 ok / attained, 1 SLO violated, 2 usage/IO/schema error.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "common/table.h"
#include "obs/slo.h"

namespace {

int Usage() {
  std::cerr << "usage: ppdp_slostat [--slo_config slo.json] [--validate_only]\n"
               "                    alerts.jsonl | access.jsonl\n";
  return 2;
}

/// Loads every JSONL object from `path`; false (with stderr detail) on I/O
/// or parse failure.
bool LoadJsonl(const std::string& path, std::vector<ppdp::JsonValue>* records) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "ppdp_slostat: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    ppdp::Result<ppdp::JsonValue> doc = ppdp::JsonValue::Parse(line);
    if (!doc.ok()) {
      std::cerr << "ppdp_slostat: " << path << ":" << line_number << ": "
                << doc.status().ToString() << "\n";
      return false;
    }
    records->push_back(std::move(*doc));
  }
  return true;
}

/// Per-alert-instance roll-up of an alert log.
struct InstanceSummary {
  uint64_t transitions = 0;
  uint64_t fired = 0;
  double firing_seconds = 0.0;  ///< closed firing->resolved intervals only
  double firing_since = -1.0;
  double last_t = -1.0;
  std::string last_state;
  std::string severity;
};

int RunAlertLog(const std::string& path, const std::vector<ppdp::JsonValue>& records,
                bool validate_only) {
  std::map<std::string, InstanceSummary> instances;
  for (size_t i = 0; i < records.size(); ++i) {
    const ppdp::JsonValue& doc = records[i];
    if (ppdp::Status valid = ppdp::obs::ValidateAlertLogRecord(doc); !valid.ok()) {
      std::cerr << "ppdp_slostat: " << path << ": record " << (i + 1) << ": " << valid.ToString()
                << "\n";
      return 2;
    }
    const std::string rule = doc.GetStringOr("rule", "");
    const std::string tenant = doc.GetStringOr("tenant", "");
    const std::string key = tenant.empty() ? rule : rule + "/" + tenant;
    const double t = doc.GetNumberOr("t_seconds", 0.0);
    InstanceSummary& summary = instances[key];
    if (summary.last_t > t) {
      std::cerr << "ppdp_slostat: " << path << ": record " << (i + 1) << ": timestamps for '"
                << key << "' go backwards\n";
      return 2;
    }
    const std::string from = doc.GetStringOr("from", "");
    const std::string to = doc.GetStringOr("to", "");
    if (!summary.last_state.empty() && summary.last_state != from) {
      std::cerr << "ppdp_slostat: " << path << ": record " << (i + 1) << ": '" << key
                << "' transitions from '" << from << "' but was last seen in '"
                << summary.last_state << "'\n";
      return 2;
    }
    summary.last_t = t;
    summary.last_state = to;
    summary.severity = doc.GetStringOr("severity", "");
    ++summary.transitions;
    if (to == "firing") {
      ++summary.fired;
      summary.firing_since = t;
    } else if (to == "resolved" && summary.firing_since >= 0) {
      summary.firing_seconds += t - summary.firing_since;
      summary.firing_since = -1.0;
    }
  }
  if (validate_only) {
    std::cout << "ppdp_slostat: " << path << ": " << records.size() << " records valid\n";
    return 0;
  }
  ppdp::Table table({"alert", "severity", "transitions", "fired", "firing s", "last state"});
  for (const auto& [key, summary] : instances) {
    table.AddRow({key, summary.severity, std::to_string(summary.transitions),
                  std::to_string(summary.fired),
                  ppdp::Table::FormatDouble(summary.firing_seconds, 3), summary.last_state});
  }
  std::cout << "== slostat: " << path << " (" << records.size() << " transitions, "
            << instances.size() << " alert instances) ==\n";
  table.Print(std::cout);
  return 0;
}

int RunAccessLog(const std::string& path, const std::vector<ppdp::JsonValue>& records,
                 const std::vector<ppdp::obs::AlertRule>& rules, bool validate_only) {
  uint64_t requests = 0;
  uint64_t errors_5xx = 0;
  std::vector<double> latencies_seconds;
  for (size_t i = 0; i < records.size(); ++i) {
    const ppdp::JsonValue& doc = records[i];
    if (doc.GetStringOr("schema", "") != "ppdp.access.v1") {
      std::cerr << "ppdp_slostat: " << path << ": record " << (i + 1)
                << ": schema is not ppdp.access.v1\n";
      return 2;
    }
    const double total_micros = doc.GetNumberOr("total_micros", -1.0);
    const int status = static_cast<int>(doc.GetNumberOr("status", 0.0));
    if (!(total_micros >= 0.0) || status <= 0) {
      std::cerr << "ppdp_slostat: " << path << ": record " << (i + 1)
                << ": missing status/total_micros\n";
      return 2;
    }
    ++requests;
    if (status >= 500) ++errors_5xx;
    latencies_seconds.push_back(total_micros / 1e6);
  }
  if (validate_only) {
    std::cout << "ppdp_slostat: " << path << ": " << records.size() << " records valid\n";
    return 0;
  }
  if (requests == 0) {
    std::cerr << "ppdp_slostat: " << path << ": no requests to judge\n";
    return 2;
  }
  std::sort(latencies_seconds.begin(), latencies_seconds.end());

  bool violated = false;
  size_t judged = 0;
  ppdp::Table table({"rule", "signal", "objective", "attained", "verdict"});
  for (const ppdp::obs::AlertRule& rule : rules) {
    // The access log answers availability and latency offline; queue and
    // ledger-burn need live windows and are skipped (and said so).
    if (rule.signal == ppdp::obs::AlertRule::Signal::kAvailability) {
      const double attained =
          1.0 - static_cast<double>(errors_5xx) / static_cast<double>(requests);
      const bool met = attained >= rule.objective;
      if (!met) violated = true;
      ++judged;
      table.AddRow({rule.name, "availability", ppdp::Table::FormatDouble(rule.objective, 4),
                    ppdp::Table::FormatDouble(attained, 4), met ? "met" : "VIOLATED"});
    } else if (rule.signal == ppdp::obs::AlertRule::Signal::kLatency) {
      const double rank = rule.quantile * static_cast<double>(latencies_seconds.size() - 1);
      const size_t lo = static_cast<size_t>(std::floor(rank));
      const size_t hi = std::min(lo + 1, latencies_seconds.size() - 1);
      const double attained =
          latencies_seconds[lo] + (rank - std::floor(rank)) *
                                      (latencies_seconds[hi] - latencies_seconds[lo]);
      const bool met = attained <= rule.threshold;
      if (!met) violated = true;
      ++judged;
      table.AddRow({rule.name, "latency", ppdp::Table::FormatDouble(rule.threshold, 4),
                    ppdp::Table::FormatDouble(attained, 4), met ? "met" : "VIOLATED"});
    } else {
      table.AddRow({rule.name, ppdp::obs::SignalName(rule.signal), "-", "-", "skipped"});
    }
  }
  std::cout << "== slostat attainment: " << path << " (" << requests << " requests, "
            << errors_5xx << " 5xx) ==\n";
  table.Print(std::cout);
  if (judged == 0) {
    std::cerr << "ppdp_slostat: no availability/latency rules to judge offline\n";
    return 2;
  }
  if (violated) {
    std::cout << "VIOLATED: at least one SLO missed its objective\n";
    return 1;
  }
  std::cout << "ok: all judged SLOs attained\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Same hand-rolled split as ppdp_tracestat: boolean flags never consume
  // the following positional path.
  std::vector<std::string> positional;
  std::vector<std::string> flag_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    if (arg == "--help") return Usage();
    if (arg == "--validate_only") {
      flag_args.push_back(arg + "=true");
      continue;
    }
    if (arg.find('=') == std::string::npos) {
      if (i + 1 >= argc) return Usage();
      arg += "=";
      arg += argv[++i];
    }
    flag_args.push_back(std::move(arg));
  }
  std::vector<char*> flag_argv;
  flag_argv.reserve(flag_args.size());
  for (std::string& arg : flag_args) flag_argv.push_back(arg.data());
  ppdp::Flags flags(static_cast<int>(flag_argv.size()), flag_argv.data());

  if (positional.size() != 1) return Usage();
  const bool validate_only = flags.GetBool("validate_only", false);

  std::vector<ppdp::obs::AlertRule> rules;
  if (const std::string config = flags.GetString("slo_config", ""); !config.empty()) {
    ppdp::Result<std::vector<ppdp::obs::AlertRule>> loaded = ppdp::obs::LoadSloConfig(config);
    if (!loaded.ok()) {
      std::cerr << "ppdp_slostat: " << loaded.status().ToString() << "\n";
      return 2;
    }
    rules = std::move(*loaded);
  } else {
    rules = ppdp::obs::DefaultSloRules();
  }

  std::vector<ppdp::JsonValue> records;
  if (!LoadJsonl(positional[0], &records)) return 2;
  if (records.empty()) {
    if (validate_only) {
      std::cout << "ppdp_slostat: " << positional[0] << ": 0 records valid\n";
      return 0;
    }
    std::cerr << "ppdp_slostat: " << positional[0] << ": empty log\n";
    return 2;
  }

  const std::string schema = records.front().GetStringOr("schema", "");
  if (schema == "ppdp.alertlog.v1") {
    return RunAlertLog(positional[0], records, validate_only);
  }
  if (schema == "ppdp.access.v1") {
    return RunAccessLog(positional[0], records, rules, validate_only);
  }
  std::cerr << "ppdp_slostat: " << positional[0]
            << ": unrecognized schema '" << schema
            << "' (want ppdp.alertlog.v1 or ppdp.access.v1)\n";
  return 2;
}
