// Profile inspector and frame-level regression gate over sampling profiles.
//
//   $ ppdp_profstat [flags] profile.json              # validate + top tables
//   $ ppdp_profstat [flags] baseline.json current.json  # frame-share diff
//
// Works on the ppdp.profile.v1 JSON a bench emits with --profile_hz (or the
// telemetry server serves on /profilez). With one file it validates the
// schema and prints the per-phase and top-frame tables; with two it diffs
// self-sample *shares* frame by frame — like ppdp_benchstat for time, but a
// level below phases — and exits non-zero when a frame's share of total
// samples grew beyond BOTH the relative threshold and the absolute floor.
//
// Flags:
//   --threshold X   (default 0.75)  relative share growth tolerated (+75%)
//   --min_share X   (default 0.02)  absolute share growth floor (2pp)
//   --top N         (default 20)    rows in the top-frames table
//   --validate_only (off)  schema-validate the file(s) and exit
//
// Exit codes: 0 ok, 1 frame regression detected, 2 usage/IO/schema error.
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/result.h"
#include "obs/profiler.h"

namespace {

int Usage() {
  std::cerr << "usage: ppdp_profstat [--threshold X] [--min_share X] [--top N]\n"
               "                     [--validate_only] profile.json [current.json]\n";
  return 2;
}

/// Loads and schema-validates one profile file; prints to stderr on failure.
bool LoadProfile(const std::string& path, ppdp::obs::CpuProfile* profile) {
  ppdp::Result<ppdp::JsonValue> doc = ppdp::JsonValue::Load(path);
  if (!doc.ok()) {
    std::cerr << "ppdp_profstat: " << doc.status().ToString() << "\n";
    return false;
  }
  ppdp::Status valid = ppdp::obs::ValidateProfileJson(*doc);
  if (!valid.ok()) {
    std::cerr << "ppdp_profstat: " << path << ": " << valid.ToString() << "\n";
    return false;
  }
  ppdp::Result<ppdp::obs::CpuProfile> parsed = ppdp::obs::CpuProfile::FromJson(*doc);
  if (!parsed.ok()) {
    std::cerr << "ppdp_profstat: " << path << ": " << parsed.status().ToString() << "\n";
    return false;
  }
  *profile = std::move(*parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Same hand-rolled split as ppdp_benchstat: boolean flags never take a
  // separate value, every other flag takes exactly one.
  std::vector<std::string> positional;
  std::vector<std::string> flag_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    if (arg == "--help") return Usage();
    if (arg == "--validate_only") {
      flag_args.push_back(arg + "=true");
      continue;
    }
    if (arg.find('=') == std::string::npos) {
      if (i + 1 >= argc) return Usage();
      arg += "=";
      arg += argv[++i];
    }
    flag_args.push_back(std::move(arg));
  }
  std::vector<char*> flag_argv;
  flag_argv.reserve(flag_args.size());
  for (std::string& arg : flag_args) flag_argv.push_back(arg.data());
  ppdp::Flags flags(static_cast<int>(flag_argv.size()), flag_argv.data());

  if (positional.empty() || positional.size() > 2) return Usage();

  ppdp::obs::CpuProfile profile;
  if (!LoadProfile(positional[0], &profile)) return 2;

  if (positional.size() == 1) {
    if (flags.GetBool("validate_only", false)) {
      std::cout << "ppdp_profstat: schema-valid (" << profile.name << ", " << profile.samples
                << " samples @ " << profile.hz << " Hz, " << profile.threads_profiled
                << " threads)\n";
      return 0;
    }
    size_t top = static_cast<size_t>(flags.GetInt("top", 20));
    std::cout << "== profile: " << profile.name << " (" << profile.samples << " samples @ "
              << profile.hz << " Hz, " << profile.threads_profiled << " threads, "
              << profile.dropped << " dropped) ==\n";
    profile.PhaseTable().Print(std::cout);
    std::cout << "\n== top " << top << " self frames ==\n";
    profile.TopFramesTable(top).Print(std::cout);
    if (profile.stacks_truncated > 0) {
      std::cout << "(" << profile.stacks_truncated << " unique stacks beyond the top "
                << ppdp::obs::CpuProfile::kMaxStacks << " not retained)\n";
    }
    return 0;
  }

  ppdp::obs::CpuProfile current;
  if (!LoadProfile(positional[1], &current)) return 2;
  if (flags.GetBool("validate_only", false)) {
    std::cout << "ppdp_profstat: both profiles schema-valid (" << profile.name << ", "
              << current.name << ")\n";
    return 0;
  }

  ppdp::obs::ProfileDiffOptions options;
  options.threshold = flags.GetDouble("threshold", options.threshold);
  options.min_share = flags.GetDouble("min_share", options.min_share);
  if (options.threshold < 0.0 || options.min_share < 0.0) {
    std::cerr << "ppdp_profstat: --threshold and --min_share must be non-negative\n";
    return 2;
  }

  ppdp::obs::ProfileDiff diff = ppdp::obs::DiffProfiles(profile, current, options);
  std::cout << "== profstat: " << current.name << " (threshold +"
            << static_cast<int>(options.threshold * 100) << "%, floor "
            << options.min_share * 100 << "pp) ==\n";
  diff.Summary().Print(std::cout);
  if (profile.compiler != current.compiler || profile.build_type != current.build_type) {
    std::cout << "(builds differ: baseline " << profile.build_type << " \"" << profile.compiler
              << "\" vs current \"" << current.compiler << "\")\n";
  }
  if (diff.regressed) {
    std::cout << "REGRESSION: at least one frame's self-share grew beyond the gate\n";
    return 1;
  }
  std::cout << "ok: no frame regressed\n";
  return 0;
}
