// Perf-regression gate over bench run reports.
//
//   $ ppdp_benchstat [flags] baseline.json current.json
//
// Diffs the per-phase wall-time totals of two BENCH_<name>.json artifacts
// (as emitted by any bench binary) phase by phase and exits non-zero when
// any phase slowed beyond BOTH the relative threshold and the absolute
// floor — so CI can gate merges against a checked-in baseline without
// tripping on sub-noise phases.
//
// Flags:
//   --threshold X     (default 0.25)  relative slowdown tolerated (+25%)
//   --min_ms X        (default 5.0)   absolute slowdown floor in milliseconds
//   --mem_threshold X (default 0 = off)  relative per-phase peak-RSS growth
//                     tolerated (0.5 = +50%); needs both reports to carry
//                     memory numbers (v6+ writers)
//   --min_mem_mb X    (default 16)  absolute peak-RSS growth floor in MB
//   --check_digests   (off)  also fail when an output CSV digest present in
//                     both reports differs (determinism audit)
//   --validate_only   (off)  schema-validate both files and exit (no diff)
//
// Exit codes: 0 ok, 1 regression detected, 2 usage/IO/schema error.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/result.h"
#include "obs/report.h"

namespace {

int Usage() {
  std::cerr << "usage: ppdp_benchstat [--threshold X] [--min_ms X] [--mem_threshold X]\n"
               "                      [--min_mem_mb X] [--check_digests] [--validate_only]\n"
               "                      baseline.json current.json\n";
  return 2;
}

/// Loads and schema-validates one report file; prints to stderr on failure.
bool LoadReport(const std::string& path, ppdp::obs::RunReport* report) {
  ppdp::Result<ppdp::JsonValue> doc = ppdp::JsonValue::Load(path);
  if (!doc.ok()) {
    std::cerr << "ppdp_benchstat: " << doc.status().ToString() << "\n";
    return false;
  }
  ppdp::Status valid = ppdp::obs::ValidateReportJson(*doc);
  if (!valid.ok()) {
    std::cerr << "ppdp_benchstat: " << path << ": " << valid.ToString() << "\n";
    return false;
  }
  ppdp::Result<ppdp::obs::RunReport> parsed = ppdp::obs::RunReport::FromJson(*doc);
  if (!parsed.ok()) {
    std::cerr << "ppdp_benchstat: " << path << ": " << parsed.status().ToString() << "\n";
    return false;
  }
  *report = std::move(*parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Hand-rolled argument split: the generic Flags parser would consume the
  // positional path after a bare boolean ("--validate_only baseline.json")
  // as that flag's value. Boolean flags here never take a separate value;
  // everything else takes exactly one ("--threshold 0.3" or "--threshold=0.3").
  std::vector<std::string> positional;
  std::vector<std::string> flag_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    if (arg == "--help") return Usage();
    if (arg == "--check_digests" || arg == "--validate_only") {
      flag_args.push_back(arg + "=true");
      continue;
    }
    if (arg.find('=') == std::string::npos) {
      if (i + 1 >= argc) return Usage();
      arg += "=";
      arg += argv[++i];
    }
    flag_args.push_back(std::move(arg));
  }
  std::vector<char*> flag_argv;
  flag_argv.reserve(flag_args.size());
  for (std::string& arg : flag_args) flag_argv.push_back(arg.data());
  ppdp::Flags flags(static_cast<int>(flag_argv.size()), flag_argv.data());

  if (positional.size() != 2) return Usage();

  ppdp::obs::RunReport baseline, current;
  if (!LoadReport(positional[0], &baseline)) return 2;
  if (!LoadReport(positional[1], &current)) return 2;

  if (flags.GetBool("validate_only", false)) {
    std::cout << "ppdp_benchstat: both reports schema-valid (" << baseline.name << ", "
              << current.name << ")\n";
    return 0;
  }

  if (baseline.name != current.name) {
    std::cerr << "ppdp_benchstat: comparing different benches: \"" << baseline.name
              << "\" vs \"" << current.name << "\"\n";
    return 2;
  }

  ppdp::obs::DiffOptions options;
  options.threshold = flags.GetDouble("threshold", options.threshold);
  options.min_ms = flags.GetDouble("min_ms", options.min_ms);
  options.check_digests = flags.GetBool("check_digests", false);
  options.mem_threshold = flags.GetDouble("mem_threshold", options.mem_threshold);
  double min_mem_mb = flags.GetDouble("min_mem_mb", 16.0);
  if (options.threshold < 0.0 || options.min_ms < 0.0 || options.mem_threshold < 0.0 ||
      min_mem_mb < 0.0) {
    std::cerr << "ppdp_benchstat: thresholds and floors must be non-negative\n";
    return 2;
  }
  options.min_mem_bytes = static_cast<uint64_t>(min_mem_mb * (1 << 20));

  ppdp::obs::ReportDiff diff = ppdp::obs::DiffReports(baseline, current, options);
  std::cout << "== benchstat: " << current.name << " (threshold +"
            << static_cast<int>(options.threshold * 100) << "%, floor " << options.min_ms
            << " ms";
  if (options.mem_threshold > 0.0) {
    std::cout << "; mem +" << static_cast<int>(options.mem_threshold * 100) << "%, floor "
              << min_mem_mb << " MB";
  }
  std::cout << ") ==\n";
  diff.Summary().Print(std::cout);
  if (baseline.build.compiler != current.build.compiler ||
      baseline.build.build_type != current.build.build_type) {
    std::cout << "(builds differ: baseline " << current.build.build_type << " \""
              << baseline.build.compiler << "\" vs current \"" << current.build.compiler
              << "\")\n";
  }
  for (const std::string& name : diff.digest_mismatches) {
    std::cout << "(output digest differs: " << name << ")\n";
  }
  // SLO attainment is informational here, never a perf gate: pre-v10
  // baselines carry no stanza, and an unmet SLO in a bench run is judged by
  // ppdp_slostat / the bench itself, not the phase-latency diff.
  if (!current.slos.empty()) {
    std::cout << "(slos:";
    for (const ppdp::obs::SloAttainment& slo : current.slos) {
      std::cout << " " << slo.rule << "=" << (slo.met ? "met" : "MISSED");
    }
    std::cout << ")\n";
  }
  if (diff.regressed) {
    std::cout << "REGRESSION: at least one phase slowed (or grew memory) beyond the gate\n";
    return 1;
  }
  std::cout << "ok: no phase regressed\n";
  return 0;
}
