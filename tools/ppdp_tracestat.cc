// Access-log analyzer and stage-level regression gate.
//
//   $ ppdp_tracestat access.jsonl                      # validate + aggregate
//   $ ppdp_tracestat --validate_only access.jsonl      # schema check only
//   $ ppdp_tracestat baseline.jsonl current.jsonl      # stage-level diff gate
//
// Reads ppdp.access.v1 JSONL access logs (as written by ppdp_serve
// --access_log / bench_serve --access_log). With one input, prints
// per-stage and per-tenant, per-stage latency breakdown tables — the
// "where did this tenant's time go" view. With two inputs, diffs the
// per-stage mean latency and exits 1 when any stage slowed beyond BOTH the
// relative threshold and the absolute floor (same gate shape as
// ppdp_benchstat).
//
// Flags:
//   --threshold X    (default 0.25) relative per-stage slowdown tolerated
//   --min_ms X       (default 1.0)  absolute per-stage slowdown floor
//   --tenant T       (default all)  restrict aggregation/diff to one tenant
//   --validate_only  (off)          validate records and exit
//
// Every record is validated either way: schema tag, well-formed request id,
// non-negative timings, and the stage-sum invariant (sum of stage micros
// <= total request micros). Exit codes: 0 ok, 1 regression, 2 usage/IO/
// schema error.
#include <cmath>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "common/table.h"

namespace {

int Usage() {
  std::cerr << "usage: ppdp_tracestat [--threshold X] [--min_ms X] [--tenant T]\n"
               "                      [--validate_only] access.jsonl [current.jsonl]\n";
  return 2;
}

bool IsLowerHex(const std::string& s) {
  for (char c : s) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

/// One parsed + validated access record (the fields the aggregations use).
struct AccessRecord {
  std::string tenant;
  std::string endpoint;
  int status = 0;
  double total_micros = 0.0;
  std::vector<std::pair<std::string, double>> stages;
};

/// Structural validation of one ppdp.access.v1 object.
ppdp::Status ValidateRecord(const ppdp::JsonValue& doc, AccessRecord* out) {
  if (!doc.is_object()) return ppdp::Status::InvalidArgument("record is not an object");
  if (doc.GetStringOr("schema", "") != "ppdp.access.v1") {
    return ppdp::Status::InvalidArgument("schema is not ppdp.access.v1");
  }
  const std::string request_id = doc.GetStringOr("request_id", "");
  if (request_id.size() != 32 || !IsLowerHex(request_id)) {
    return ppdp::Status::InvalidArgument("request_id is not 32 lowercase hex chars");
  }
  const ppdp::JsonValue* status = doc.Find("status");
  if (status == nullptr || !status->is_number()) {
    return ppdp::Status::InvalidArgument("status missing or non-numeric");
  }
  out->status = static_cast<int>(status->as_number());
  out->tenant = doc.GetStringOr("tenant", "");
  out->endpoint = doc.GetStringOr("endpoint", "");
  out->total_micros = doc.GetNumberOr("total_micros", -1.0);
  if (!(out->total_micros >= 0.0)) {
    return ppdp::Status::InvalidArgument("total_micros missing or negative");
  }
  const std::string coalesce = doc.GetStringOr("coalesce", "");
  if (!coalesce.empty() && coalesce != "leader" && coalesce != "waiter") {
    return ppdp::Status::InvalidArgument("coalesce must be empty, leader, or waiter");
  }
  if (coalesce == "waiter") {
    const std::string leader = doc.GetStringOr("leader_request_id", "");
    if (leader.size() != 32 || !IsLowerHex(leader)) {
      return ppdp::Status::InvalidArgument("waiter without a well-formed leader_request_id");
    }
  }
  const ppdp::JsonValue* stages = doc.Find("stages");
  if (stages == nullptr || !stages->is_object()) {
    return ppdp::Status::InvalidArgument("stages missing or not an object");
  }
  double stage_sum = 0.0;
  for (const auto& [key, micros] : stages->members()) {
    if (!micros.is_number() || micros.as_number() < 0.0) {
      return ppdp::Status::InvalidArgument("stage \"" + key + "\" has a non-numeric/negative value");
    }
    stage_sum += micros.as_number();
    out->stages.emplace_back(key, micros.as_number());
  }
  // The invariant the server guarantees by construction: stages are
  // disjoint sub-intervals of the request, closed before the total is
  // stamped. Half a microsecond of slack absorbs double rounding.
  if (stage_sum > out->total_micros + 0.5) {
    return ppdp::Status::InvalidArgument("stage micros sum exceeds total_micros");
  }
  return ppdp::Status::Ok();
}

/// Loads + validates one JSONL file; false (with stderr detail) on any bad
/// line. `tenant` non-empty keeps only that tenant's records.
bool LoadLog(const std::string& path, const std::string& tenant,
             std::vector<AccessRecord>* records) {
  std::ifstream file(path);
  if (!file) {
    std::cerr << "ppdp_tracestat: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    if (line.empty()) continue;
    ppdp::Result<ppdp::JsonValue> doc = ppdp::JsonValue::Parse(line);
    if (!doc.ok()) {
      std::cerr << "ppdp_tracestat: " << path << ":" << line_number << ": "
                << doc.status().ToString() << "\n";
      return false;
    }
    AccessRecord record;
    if (ppdp::Status valid = ValidateRecord(*doc, &record); !valid.ok()) {
      std::cerr << "ppdp_tracestat: " << path << ":" << line_number << ": " << valid.ToString()
                << "\n";
      return false;
    }
    if (!tenant.empty() && record.tenant != tenant) continue;
    records->push_back(std::move(record));
  }
  return true;
}

struct StageStats {
  uint64_t count = 0;
  double total_micros = 0.0;
  double max_micros = 0.0;

  void Add(double micros) {
    ++count;
    total_micros += micros;
    max_micros = std::max(max_micros, micros);
  }
  double mean_micros() const { return count == 0 ? 0.0 : total_micros / count; }
};

/// stage -> stats, over every record ("total" tracks whole-request time).
std::map<std::string, StageStats> StageBreakdown(const std::vector<AccessRecord>& records) {
  std::map<std::string, StageStats> stats;
  for (const AccessRecord& record : records) {
    stats["total"].Add(record.total_micros);
    for (const auto& [stage, micros] : record.stages) stats[stage].Add(micros);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  // Same hand-rolled split as ppdp_benchstat: boolean flags never consume
  // the following positional path.
  std::vector<std::string> positional;
  std::vector<std::string> flag_args = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    if (arg == "--help") return Usage();
    if (arg == "--validate_only") {
      flag_args.push_back(arg + "=true");
      continue;
    }
    if (arg.find('=') == std::string::npos) {
      if (i + 1 >= argc) return Usage();
      arg += "=";
      arg += argv[++i];
    }
    flag_args.push_back(std::move(arg));
  }
  std::vector<char*> flag_argv;
  flag_argv.reserve(flag_args.size());
  for (std::string& arg : flag_args) flag_argv.push_back(arg.data());
  ppdp::Flags flags(static_cast<int>(flag_argv.size()), flag_argv.data());

  if (positional.empty() || positional.size() > 2) return Usage();
  const double threshold = flags.GetDouble("threshold", 0.25);
  const double min_ms = flags.GetDouble("min_ms", 1.0);
  const std::string tenant = flags.GetString("tenant", "");
  if (threshold < 0.0 || min_ms < 0.0) {
    std::cerr << "ppdp_tracestat: threshold and floor must be non-negative\n";
    return 2;
  }

  std::vector<AccessRecord> records;
  if (!LoadLog(positional[0], tenant, &records)) return 2;

  if (flags.GetBool("validate_only", false)) {
    std::cout << "ppdp_tracestat: " << positional[0] << ": " << records.size()
              << " records valid\n";
    if (positional.size() == 2) {
      std::vector<AccessRecord> current;
      if (!LoadLog(positional[1], tenant, &current)) return 2;
      std::cout << "ppdp_tracestat: " << positional[1] << ": " << current.size()
                << " records valid\n";
    }
    return 0;
  }

  if (positional.size() == 1) {
    // Aggregation mode: per-stage summary, then tenant x stage breakdown.
    const std::map<std::string, StageStats> stages = StageBreakdown(records);
    ppdp::Table stage_table({"stage", "count", "total ms", "mean ms", "max ms"});
    for (const auto& [stage, stats] : stages) {
      stage_table.AddRow({stage, std::to_string(stats.count),
                          ppdp::Table::FormatDouble(stats.total_micros / 1e3, 3),
                          ppdp::Table::FormatDouble(stats.mean_micros() / 1e3, 3),
                          ppdp::Table::FormatDouble(stats.max_micros / 1e3, 3)});
    }
    std::cout << "== tracestat: " << positional[0] << " (" << records.size()
              << " requests) ==\n";
    stage_table.Print(std::cout);

    std::map<std::string, std::vector<AccessRecord>> by_tenant;
    std::map<std::string, uint64_t> errors;
    for (const AccessRecord& record : records) {
      by_tenant[record.tenant].push_back(record);
      if (record.status >= 400) ++errors[record.tenant];
    }
    ppdp::Table tenant_table({"tenant", "stage", "count", "mean ms", "max ms"});
    for (const auto& [name, tenant_records] : by_tenant) {
      for (const auto& [stage, stats] : StageBreakdown(tenant_records)) {
        tenant_table.AddRow({name, stage, std::to_string(stats.count),
                             ppdp::Table::FormatDouble(stats.mean_micros() / 1e3, 3),
                             ppdp::Table::FormatDouble(stats.max_micros / 1e3, 3)});
      }
    }
    tenant_table.Print(std::cout);
    for (const auto& [name, count] : errors) {
      std::cout << "(tenant " << name << ": " << count << " non-2xx responses)\n";
    }
    return 0;
  }

  // Diff mode: per-stage mean latency, baseline vs current.
  std::vector<AccessRecord> current_records;
  if (!LoadLog(positional[1], tenant, &current_records)) return 2;
  const std::map<std::string, StageStats> baseline = StageBreakdown(records);
  const std::map<std::string, StageStats> current = StageBreakdown(current_records);

  bool regressed = false;
  ppdp::Table diff({"stage", "base mean ms", "cur mean ms", "delta ms", "delta %", "verdict"});
  for (const auto& [stage, cur] : current) {
    auto it = baseline.find(stage);
    if (it == baseline.end()) continue;  // new stage: nothing to gate against
    const double base_mean = it->second.mean_micros();
    const double cur_mean = cur.mean_micros();
    const double delta = cur_mean - base_mean;
    const double relative = base_mean > 0.0 ? delta / base_mean : 0.0;
    const bool slow = delta >= min_ms * 1e3 && relative > threshold;
    if (slow) regressed = true;
    diff.AddRow({stage, ppdp::Table::FormatDouble(base_mean / 1e3, 3),
                 ppdp::Table::FormatDouble(cur_mean / 1e3, 3),
                 ppdp::Table::FormatDouble(delta / 1e3, 3),
                 ppdp::Table::FormatDouble(relative * 100.0, 1), slow ? "REGRESSED" : "ok"});
  }
  std::cout << "== tracestat diff: " << positional[0] << " -> " << positional[1]
            << " (threshold +" << static_cast<int>(threshold * 100) << "%, floor " << min_ms
            << " ms) ==\n";
  diff.Print(std::cout);
  if (regressed) {
    std::cout << "REGRESSION: at least one stage slowed beyond the gate\n";
    return 1;
  }
  std::cout << "ok: no stage regressed\n";
  return 0;
}
