// Strict Prometheus text-exposition validator for CI scrape checks.
//
//   $ curl -s http://127.0.0.1:$PORT/metrics | ppdp_promcheck
//   $ ppdp_promcheck scrape.txt
//
// Reads one exposition document (stdin, or each file argument) and runs it
// through obs::ValidatePrometheusText — the same structural checks
// telemetry_test applies to the in-process renderer: name grammar,
// HELP/TYPE discipline, contiguous sample blocks, parseable values, and
// cumulative le-terminated histogram series. Exits 0 when every input is a
// document Prometheus would ingest, 1 on the first violation.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace {

int CheckOne(const std::string& label, const std::string& text) {
  ppdp::Status status = ppdp::obs::ValidatePrometheusText(text);
  if (!status.ok()) {
    std::cerr << "ppdp_promcheck: " << label << ": " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "ppdp_promcheck: " << label << ": ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc <= 1) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return CheckOne("<stdin>", buffer.str());
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      std::cerr << "ppdp_promcheck: cannot open " << argv[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    if (int status = CheckOne(argv[i], buffer.str()); status != 0) return status;
  }
  return 0;
}
