// Strict Prometheus text-exposition validator for CI scrape checks.
//
//   $ curl -s http://127.0.0.1:$PORT/metrics | ppdp_promcheck
//   $ ppdp_promcheck --max_series=500 scrape.txt
//
// Reads one exposition document (stdin, or each file argument) and runs it
// through obs::ValidatePrometheusText — the same structural checks
// telemetry_test applies to the in-process renderer: name grammar,
// HELP/TYPE discipline, contiguous sample blocks, parseable values, and
// cumulative le-terminated histogram series. Exits 0 when every input is a
// document Prometheus would ingest, 1 on the first violation.
//
// --max_series=N additionally fails any document exposing more than N
// sample series — the cardinality lint that keeps per-tenant metric
// families (serve.tenant.<t>.*) from growing unbounded.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace {

/// Sample lines in the exposition: every non-empty line that is not a
/// HELP/TYPE comment is one series sample.
size_t CountSeries(const std::string& text) {
  size_t series = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++series;
  }
  return series;
}

int CheckOne(const std::string& label, const std::string& text, long max_series) {
  ppdp::Status status = ppdp::obs::ValidatePrometheusText(text);
  if (!status.ok()) {
    std::cerr << "ppdp_promcheck: " << label << ": " << status.ToString() << "\n";
    return 1;
  }
  const size_t series = CountSeries(text);
  if (max_series > 0 && series > static_cast<size_t>(max_series)) {
    std::cerr << "ppdp_promcheck: " << label << ": " << series
              << " series exceeds --max_series=" << max_series << "\n";
    return 1;
  }
  std::cout << "ppdp_promcheck: " << label << ": ok (" << series << " series)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  long max_series = 0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max_series=", 0) == 0) {
      char* rest = nullptr;
      max_series = std::strtol(arg.c_str() + 13, &rest, 10);
      if (rest == nullptr || *rest != '\0' || max_series <= 0) {
        std::cerr << "ppdp_promcheck: --max_series wants a positive integer\n";
        return 1;
      }
      continue;
    }
    if (arg == "--max_series") {
      if (i + 1 >= argc) {
        std::cerr << "ppdp_promcheck: --max_series wants a value\n";
        return 1;
      }
      max_series = std::strtol(argv[++i], nullptr, 10);
      if (max_series <= 0) {
        std::cerr << "ppdp_promcheck: --max_series wants a positive integer\n";
        return 1;
      }
      continue;
    }
    files.push_back(arg);
  }

  if (files.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return CheckOne("<stdin>", buffer.str(), max_series);
  }
  for (const std::string& path : files) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "ppdp_promcheck: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    if (int status = CheckOne(path, buffer.str(), max_series); status != 0) return status;
  }
  return 0;
}
