file(REMOVE_RECURSE
  "CMakeFiles/dp_synthesis.dir/dp_synthesis.cpp.o"
  "CMakeFiles/dp_synthesis.dir/dp_synthesis.cpp.o.d"
  "dp_synthesis"
  "dp_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
