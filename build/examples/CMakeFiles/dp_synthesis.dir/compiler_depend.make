# Empty compiler generated dependencies file for dp_synthesis.
# This may be replaced when dependencies are built.
