# Empty dependencies file for social_network_publishing.
# This may be replaced when dependencies are built.
