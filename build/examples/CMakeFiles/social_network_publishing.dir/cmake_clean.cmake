file(REMOVE_RECURSE
  "CMakeFiles/social_network_publishing.dir/social_network_publishing.cpp.o"
  "CMakeFiles/social_network_publishing.dir/social_network_publishing.cpp.o.d"
  "social_network_publishing"
  "social_network_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_network_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
