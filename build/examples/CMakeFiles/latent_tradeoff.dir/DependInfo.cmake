
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/latent_tradeoff.cpp" "examples/CMakeFiles/latent_tradeoff.dir/latent_tradeoff.cpp.o" "gcc" "examples/CMakeFiles/latent_tradeoff.dir/latent_tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ppdp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/DependInfo.cmake"
  "/root/repo/build/src/genomics/CMakeFiles/ppdp_genomics.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ppdp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/anonymize/CMakeFiles/ppdp_anonymize.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitize/CMakeFiles/ppdp_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/ppdp_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/rst/CMakeFiles/ppdp_rst.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/iot/CMakeFiles/ppdp_iot.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/ppdp_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
