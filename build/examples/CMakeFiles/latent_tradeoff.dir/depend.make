# Empty dependencies file for latent_tradeoff.
# This may be replaced when dependencies are built.
