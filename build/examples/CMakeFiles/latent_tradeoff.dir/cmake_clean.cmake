file(REMOVE_RECURSE
  "CMakeFiles/latent_tradeoff.dir/latent_tradeoff.cpp.o"
  "CMakeFiles/latent_tradeoff.dir/latent_tradeoff.cpp.o.d"
  "latent_tradeoff"
  "latent_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latent_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
