file(REMOVE_RECURSE
  "CMakeFiles/kin_privacy.dir/kin_privacy.cpp.o"
  "CMakeFiles/kin_privacy.dir/kin_privacy.cpp.o.d"
  "kin_privacy"
  "kin_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kin_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
