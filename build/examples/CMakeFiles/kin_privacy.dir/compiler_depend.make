# Empty compiler generated dependencies file for kin_privacy.
# This may be replaced when dependencies are built.
