file(REMOVE_RECURSE
  "CMakeFiles/iot_collection.dir/iot_collection.cpp.o"
  "CMakeFiles/iot_collection.dir/iot_collection.cpp.o.d"
  "iot_collection"
  "iot_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
