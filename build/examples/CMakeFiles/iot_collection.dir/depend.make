# Empty dependencies file for iot_collection.
# This may be replaced when dependencies are built.
