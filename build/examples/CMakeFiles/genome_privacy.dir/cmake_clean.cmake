file(REMOVE_RECURSE
  "CMakeFiles/genome_privacy.dir/genome_privacy.cpp.o"
  "CMakeFiles/genome_privacy.dir/genome_privacy.cpp.o.d"
  "genome_privacy"
  "genome_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
