# Empty dependencies file for genome_privacy.
# This may be replaced when dependencies are built.
