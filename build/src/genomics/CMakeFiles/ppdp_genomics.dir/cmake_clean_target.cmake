file(REMOVE_RECURSE
  "libppdp_genomics.a"
)
