
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genomics/factor_graph.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/factor_graph.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/factor_graph.cc.o.d"
  "/root/repo/src/genomics/genome_data.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/genome_data.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/genome_data.cc.o.d"
  "/root/repo/src/genomics/genome_dp.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/genome_dp.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/genome_dp.cc.o.d"
  "/root/repo/src/genomics/genome_io.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/genome_io.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/genome_io.cc.o.d"
  "/root/repo/src/genomics/gwas_catalog.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/gwas_catalog.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/gwas_catalog.cc.o.d"
  "/root/repo/src/genomics/imputation.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/imputation.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/imputation.cc.o.d"
  "/root/repo/src/genomics/inference_attack.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/inference_attack.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/inference_attack.cc.o.d"
  "/root/repo/src/genomics/pedigree.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/pedigree.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/pedigree.cc.o.d"
  "/root/repo/src/genomics/privacy_metrics.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/privacy_metrics.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/privacy_metrics.cc.o.d"
  "/root/repo/src/genomics/snp.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/snp.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/snp.cc.o.d"
  "/root/repo/src/genomics/snp_sanitizer.cc" "src/genomics/CMakeFiles/ppdp_genomics.dir/snp_sanitizer.cc.o" "gcc" "src/genomics/CMakeFiles/ppdp_genomics.dir/snp_sanitizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ppdp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/ppdp_dp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
