# Empty dependencies file for ppdp_genomics.
# This may be replaced when dependencies are built.
