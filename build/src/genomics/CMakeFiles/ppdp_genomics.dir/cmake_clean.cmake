file(REMOVE_RECURSE
  "CMakeFiles/ppdp_genomics.dir/factor_graph.cc.o"
  "CMakeFiles/ppdp_genomics.dir/factor_graph.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/genome_data.cc.o"
  "CMakeFiles/ppdp_genomics.dir/genome_data.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/genome_dp.cc.o"
  "CMakeFiles/ppdp_genomics.dir/genome_dp.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/genome_io.cc.o"
  "CMakeFiles/ppdp_genomics.dir/genome_io.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/gwas_catalog.cc.o"
  "CMakeFiles/ppdp_genomics.dir/gwas_catalog.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/imputation.cc.o"
  "CMakeFiles/ppdp_genomics.dir/imputation.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/inference_attack.cc.o"
  "CMakeFiles/ppdp_genomics.dir/inference_attack.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/pedigree.cc.o"
  "CMakeFiles/ppdp_genomics.dir/pedigree.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/privacy_metrics.cc.o"
  "CMakeFiles/ppdp_genomics.dir/privacy_metrics.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/snp.cc.o"
  "CMakeFiles/ppdp_genomics.dir/snp.cc.o.d"
  "CMakeFiles/ppdp_genomics.dir/snp_sanitizer.cc.o"
  "CMakeFiles/ppdp_genomics.dir/snp_sanitizer.cc.o.d"
  "libppdp_genomics.a"
  "libppdp_genomics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_genomics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
