# Empty dependencies file for ppdp_classify.
# This may be replaced when dependencies are built.
