file(REMOVE_RECURSE
  "libppdp_classify.a"
)
