
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/collective.cc" "src/classify/CMakeFiles/ppdp_classify.dir/collective.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/collective.cc.o.d"
  "/root/repo/src/classify/community.cc" "src/classify/CMakeFiles/ppdp_classify.dir/community.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/community.cc.o.d"
  "/root/repo/src/classify/evaluation.cc" "src/classify/CMakeFiles/ppdp_classify.dir/evaluation.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/evaluation.cc.o.d"
  "/root/repo/src/classify/gibbs.cc" "src/classify/CMakeFiles/ppdp_classify.dir/gibbs.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/gibbs.cc.o.d"
  "/root/repo/src/classify/knn.cc" "src/classify/CMakeFiles/ppdp_classify.dir/knn.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/knn.cc.o.d"
  "/root/repo/src/classify/naive_bayes.cc" "src/classify/CMakeFiles/ppdp_classify.dir/naive_bayes.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/naive_bayes.cc.o.d"
  "/root/repo/src/classify/relational.cc" "src/classify/CMakeFiles/ppdp_classify.dir/relational.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/relational.cc.o.d"
  "/root/repo/src/classify/rst_classifier.cc" "src/classify/CMakeFiles/ppdp_classify.dir/rst_classifier.cc.o" "gcc" "src/classify/CMakeFiles/ppdp_classify.dir/rst_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rst/CMakeFiles/ppdp_rst.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
