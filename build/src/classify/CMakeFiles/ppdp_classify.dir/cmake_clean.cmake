file(REMOVE_RECURSE
  "CMakeFiles/ppdp_classify.dir/collective.cc.o"
  "CMakeFiles/ppdp_classify.dir/collective.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/community.cc.o"
  "CMakeFiles/ppdp_classify.dir/community.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/evaluation.cc.o"
  "CMakeFiles/ppdp_classify.dir/evaluation.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/gibbs.cc.o"
  "CMakeFiles/ppdp_classify.dir/gibbs.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/knn.cc.o"
  "CMakeFiles/ppdp_classify.dir/knn.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/naive_bayes.cc.o"
  "CMakeFiles/ppdp_classify.dir/naive_bayes.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/relational.cc.o"
  "CMakeFiles/ppdp_classify.dir/relational.cc.o.d"
  "CMakeFiles/ppdp_classify.dir/rst_classifier.cc.o"
  "CMakeFiles/ppdp_classify.dir/rst_classifier.cc.o.d"
  "libppdp_classify.a"
  "libppdp_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
