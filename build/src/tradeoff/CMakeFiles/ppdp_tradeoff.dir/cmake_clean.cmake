file(REMOVE_RECURSE
  "CMakeFiles/ppdp_tradeoff.dir/attribute_strategy.cc.o"
  "CMakeFiles/ppdp_tradeoff.dir/attribute_strategy.cc.o.d"
  "CMakeFiles/ppdp_tradeoff.dir/collective_strategy.cc.o"
  "CMakeFiles/ppdp_tradeoff.dir/collective_strategy.cc.o.d"
  "CMakeFiles/ppdp_tradeoff.dir/link_strategy.cc.o"
  "CMakeFiles/ppdp_tradeoff.dir/link_strategy.cc.o.d"
  "CMakeFiles/ppdp_tradeoff.dir/profile.cc.o"
  "CMakeFiles/ppdp_tradeoff.dir/profile.cc.o.d"
  "CMakeFiles/ppdp_tradeoff.dir/utility_loss.cc.o"
  "CMakeFiles/ppdp_tradeoff.dir/utility_loss.cc.o.d"
  "libppdp_tradeoff.a"
  "libppdp_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
