# Empty dependencies file for ppdp_tradeoff.
# This may be replaced when dependencies are built.
