
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tradeoff/attribute_strategy.cc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/attribute_strategy.cc.o" "gcc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/attribute_strategy.cc.o.d"
  "/root/repo/src/tradeoff/collective_strategy.cc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/collective_strategy.cc.o" "gcc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/collective_strategy.cc.o.d"
  "/root/repo/src/tradeoff/link_strategy.cc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/link_strategy.cc.o" "gcc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/link_strategy.cc.o.d"
  "/root/repo/src/tradeoff/profile.cc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/profile.cc.o" "gcc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/profile.cc.o.d"
  "/root/repo/src/tradeoff/utility_loss.cc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/utility_loss.cc.o" "gcc" "src/tradeoff/CMakeFiles/ppdp_tradeoff.dir/utility_loss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/ppdp_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ppdp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sanitize/CMakeFiles/ppdp_sanitize.dir/DependInfo.cmake"
  "/root/repo/build/src/rst/CMakeFiles/ppdp_rst.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
