file(REMOVE_RECURSE
  "libppdp_tradeoff.a"
)
