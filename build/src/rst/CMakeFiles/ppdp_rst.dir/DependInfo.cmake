
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rst/decision_rules.cc" "src/rst/CMakeFiles/ppdp_rst.dir/decision_rules.cc.o" "gcc" "src/rst/CMakeFiles/ppdp_rst.dir/decision_rules.cc.o.d"
  "/root/repo/src/rst/indiscernibility.cc" "src/rst/CMakeFiles/ppdp_rst.dir/indiscernibility.cc.o" "gcc" "src/rst/CMakeFiles/ppdp_rst.dir/indiscernibility.cc.o.d"
  "/root/repo/src/rst/information_system.cc" "src/rst/CMakeFiles/ppdp_rst.dir/information_system.cc.o" "gcc" "src/rst/CMakeFiles/ppdp_rst.dir/information_system.cc.o.d"
  "/root/repo/src/rst/reduct.cc" "src/rst/CMakeFiles/ppdp_rst.dir/reduct.cc.o" "gcc" "src/rst/CMakeFiles/ppdp_rst.dir/reduct.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppdp_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
