file(REMOVE_RECURSE
  "libppdp_rst.a"
)
