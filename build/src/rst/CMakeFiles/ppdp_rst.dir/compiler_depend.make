# Empty compiler generated dependencies file for ppdp_rst.
# This may be replaced when dependencies are built.
