file(REMOVE_RECURSE
  "CMakeFiles/ppdp_rst.dir/decision_rules.cc.o"
  "CMakeFiles/ppdp_rst.dir/decision_rules.cc.o.d"
  "CMakeFiles/ppdp_rst.dir/indiscernibility.cc.o"
  "CMakeFiles/ppdp_rst.dir/indiscernibility.cc.o.d"
  "CMakeFiles/ppdp_rst.dir/information_system.cc.o"
  "CMakeFiles/ppdp_rst.dir/information_system.cc.o.d"
  "CMakeFiles/ppdp_rst.dir/reduct.cc.o"
  "CMakeFiles/ppdp_rst.dir/reduct.cc.o.d"
  "libppdp_rst.a"
  "libppdp_rst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_rst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
