file(REMOVE_RECURSE
  "libppdp_dp.a"
)
