file(REMOVE_RECURSE
  "CMakeFiles/ppdp_dp.dir/aggregation.cc.o"
  "CMakeFiles/ppdp_dp.dir/aggregation.cc.o.d"
  "CMakeFiles/ppdp_dp.dir/mechanisms.cc.o"
  "CMakeFiles/ppdp_dp.dir/mechanisms.cc.o.d"
  "CMakeFiles/ppdp_dp.dir/synthesizer.cc.o"
  "CMakeFiles/ppdp_dp.dir/synthesizer.cc.o.d"
  "libppdp_dp.a"
  "libppdp_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
