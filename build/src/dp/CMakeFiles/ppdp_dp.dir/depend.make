# Empty dependencies file for ppdp_dp.
# This may be replaced when dependencies are built.
