# Empty dependencies file for ppdp_iot.
# This may be replaced when dependencies are built.
