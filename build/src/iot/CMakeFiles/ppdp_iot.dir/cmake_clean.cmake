file(REMOVE_RECURSE
  "CMakeFiles/ppdp_iot.dir/collection.cc.o"
  "CMakeFiles/ppdp_iot.dir/collection.cc.o.d"
  "libppdp_iot.a"
  "libppdp_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
