file(REMOVE_RECURSE
  "libppdp_iot.a"
)
