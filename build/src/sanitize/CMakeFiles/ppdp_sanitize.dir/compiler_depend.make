# Empty compiler generated dependencies file for ppdp_sanitize.
# This may be replaced when dependencies are built.
