file(REMOVE_RECURSE
  "libppdp_sanitize.a"
)
