file(REMOVE_RECURSE
  "CMakeFiles/ppdp_sanitize.dir/attribute_selection.cc.o"
  "CMakeFiles/ppdp_sanitize.dir/attribute_selection.cc.o.d"
  "CMakeFiles/ppdp_sanitize.dir/collective_sanitizer.cc.o"
  "CMakeFiles/ppdp_sanitize.dir/collective_sanitizer.cc.o.d"
  "CMakeFiles/ppdp_sanitize.dir/definitions.cc.o"
  "CMakeFiles/ppdp_sanitize.dir/definitions.cc.o.d"
  "CMakeFiles/ppdp_sanitize.dir/generalization.cc.o"
  "CMakeFiles/ppdp_sanitize.dir/generalization.cc.o.d"
  "CMakeFiles/ppdp_sanitize.dir/link_selection.cc.o"
  "CMakeFiles/ppdp_sanitize.dir/link_selection.cc.o.d"
  "libppdp_sanitize.a"
  "libppdp_sanitize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_sanitize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
