
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sanitize/attribute_selection.cc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/attribute_selection.cc.o" "gcc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/attribute_selection.cc.o.d"
  "/root/repo/src/sanitize/collective_sanitizer.cc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/collective_sanitizer.cc.o" "gcc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/collective_sanitizer.cc.o.d"
  "/root/repo/src/sanitize/definitions.cc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/definitions.cc.o" "gcc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/definitions.cc.o.d"
  "/root/repo/src/sanitize/generalization.cc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/generalization.cc.o" "gcc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/generalization.cc.o.d"
  "/root/repo/src/sanitize/link_selection.cc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/link_selection.cc.o" "gcc" "src/sanitize/CMakeFiles/ppdp_sanitize.dir/link_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ppdp_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/rst/CMakeFiles/ppdp_rst.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/ppdp_classify.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
