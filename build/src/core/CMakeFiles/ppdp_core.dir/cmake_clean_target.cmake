file(REMOVE_RECURSE
  "libppdp_core.a"
)
