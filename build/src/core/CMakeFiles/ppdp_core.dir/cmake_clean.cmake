file(REMOVE_RECURSE
  "CMakeFiles/ppdp_core.dir/genome_publisher.cc.o"
  "CMakeFiles/ppdp_core.dir/genome_publisher.cc.o.d"
  "CMakeFiles/ppdp_core.dir/social_publisher.cc.o"
  "CMakeFiles/ppdp_core.dir/social_publisher.cc.o.d"
  "CMakeFiles/ppdp_core.dir/tradeoff_publisher.cc.o"
  "CMakeFiles/ppdp_core.dir/tradeoff_publisher.cc.o.d"
  "libppdp_core.a"
  "libppdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
