# Empty compiler generated dependencies file for ppdp_core.
# This may be replaced when dependencies are built.
