file(REMOVE_RECURSE
  "libppdp_common.a"
)
