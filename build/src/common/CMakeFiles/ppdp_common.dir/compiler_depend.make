# Empty compiler generated dependencies file for ppdp_common.
# This may be replaced when dependencies are built.
