file(REMOVE_RECURSE
  "CMakeFiles/ppdp_common.dir/csv.cc.o"
  "CMakeFiles/ppdp_common.dir/csv.cc.o.d"
  "CMakeFiles/ppdp_common.dir/flags.cc.o"
  "CMakeFiles/ppdp_common.dir/flags.cc.o.d"
  "CMakeFiles/ppdp_common.dir/math_util.cc.o"
  "CMakeFiles/ppdp_common.dir/math_util.cc.o.d"
  "CMakeFiles/ppdp_common.dir/rng.cc.o"
  "CMakeFiles/ppdp_common.dir/rng.cc.o.d"
  "CMakeFiles/ppdp_common.dir/status.cc.o"
  "CMakeFiles/ppdp_common.dir/status.cc.o.d"
  "CMakeFiles/ppdp_common.dir/table.cc.o"
  "CMakeFiles/ppdp_common.dir/table.cc.o.d"
  "libppdp_common.a"
  "libppdp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
