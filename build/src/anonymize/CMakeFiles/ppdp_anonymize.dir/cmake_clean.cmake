file(REMOVE_RECURSE
  "CMakeFiles/ppdp_anonymize.dir/kanonymity.cc.o"
  "CMakeFiles/ppdp_anonymize.dir/kanonymity.cc.o.d"
  "libppdp_anonymize.a"
  "libppdp_anonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_anonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
