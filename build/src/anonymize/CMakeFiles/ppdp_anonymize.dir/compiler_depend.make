# Empty compiler generated dependencies file for ppdp_anonymize.
# This may be replaced when dependencies are built.
