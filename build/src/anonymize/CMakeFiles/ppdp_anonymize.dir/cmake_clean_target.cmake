file(REMOVE_RECURSE
  "libppdp_anonymize.a"
)
