file(REMOVE_RECURSE
  "libppdp_graph.a"
)
