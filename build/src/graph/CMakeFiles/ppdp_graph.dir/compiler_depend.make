# Empty compiler generated dependencies file for ppdp_graph.
# This may be replaced when dependencies are built.
