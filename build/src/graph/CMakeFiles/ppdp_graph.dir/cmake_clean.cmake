file(REMOVE_RECURSE
  "CMakeFiles/ppdp_graph.dir/centrality.cc.o"
  "CMakeFiles/ppdp_graph.dir/centrality.cc.o.d"
  "CMakeFiles/ppdp_graph.dir/graph_generators.cc.o"
  "CMakeFiles/ppdp_graph.dir/graph_generators.cc.o.d"
  "CMakeFiles/ppdp_graph.dir/graph_io.cc.o"
  "CMakeFiles/ppdp_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/ppdp_graph.dir/graph_metrics.cc.o"
  "CMakeFiles/ppdp_graph.dir/graph_metrics.cc.o.d"
  "CMakeFiles/ppdp_graph.dir/rewire.cc.o"
  "CMakeFiles/ppdp_graph.dir/rewire.cc.o.d"
  "CMakeFiles/ppdp_graph.dir/social_graph.cc.o"
  "CMakeFiles/ppdp_graph.dir/social_graph.cc.o.d"
  "libppdp_graph.a"
  "libppdp_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
