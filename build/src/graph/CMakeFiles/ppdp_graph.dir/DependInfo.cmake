
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/centrality.cc" "src/graph/CMakeFiles/ppdp_graph.dir/centrality.cc.o" "gcc" "src/graph/CMakeFiles/ppdp_graph.dir/centrality.cc.o.d"
  "/root/repo/src/graph/graph_generators.cc" "src/graph/CMakeFiles/ppdp_graph.dir/graph_generators.cc.o" "gcc" "src/graph/CMakeFiles/ppdp_graph.dir/graph_generators.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/ppdp_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/ppdp_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_metrics.cc" "src/graph/CMakeFiles/ppdp_graph.dir/graph_metrics.cc.o" "gcc" "src/graph/CMakeFiles/ppdp_graph.dir/graph_metrics.cc.o.d"
  "/root/repo/src/graph/rewire.cc" "src/graph/CMakeFiles/ppdp_graph.dir/rewire.cc.o" "gcc" "src/graph/CMakeFiles/ppdp_graph.dir/rewire.cc.o.d"
  "/root/repo/src/graph/social_graph.cc" "src/graph/CMakeFiles/ppdp_graph.dir/social_graph.cc.o" "gcc" "src/graph/CMakeFiles/ppdp_graph.dir/social_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppdp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
