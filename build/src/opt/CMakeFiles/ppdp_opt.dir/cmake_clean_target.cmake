file(REMOVE_RECURSE
  "libppdp_opt.a"
)
