file(REMOVE_RECURSE
  "CMakeFiles/ppdp_opt.dir/simplex.cc.o"
  "CMakeFiles/ppdp_opt.dir/simplex.cc.o.d"
  "CMakeFiles/ppdp_opt.dir/submodular.cc.o"
  "CMakeFiles/ppdp_opt.dir/submodular.cc.o.d"
  "libppdp_opt.a"
  "libppdp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppdp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
