# Empty compiler generated dependencies file for ppdp_opt.
# This may be replaced when dependencies are built.
