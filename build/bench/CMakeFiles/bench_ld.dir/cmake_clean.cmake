file(REMOVE_RECURSE
  "CMakeFiles/bench_ld.dir/bench_ld.cc.o"
  "CMakeFiles/bench_ld.dir/bench_ld.cc.o.d"
  "bench_ld"
  "bench_ld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
