# Empty dependencies file for bench_ld.
# This may be replaced when dependencies are built.
