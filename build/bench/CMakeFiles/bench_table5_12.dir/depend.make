# Empty dependencies file for bench_table5_12.
# This may be replaced when dependencies are built.
