file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_12.dir/bench_table5_12.cc.o"
  "CMakeFiles/bench_table5_12.dir/bench_table5_12.cc.o.d"
  "bench_table5_12"
  "bench_table5_12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
