file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_56.dir/bench_table3_56.cc.o"
  "CMakeFiles/bench_table3_56.dir/bench_table3_56.cc.o.d"
  "bench_table3_56"
  "bench_table3_56.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_56.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
