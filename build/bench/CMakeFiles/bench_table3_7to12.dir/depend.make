# Empty dependencies file for bench_table3_7to12.
# This may be replaced when dependencies are built.
