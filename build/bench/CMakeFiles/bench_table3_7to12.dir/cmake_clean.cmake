file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_7to12.dir/bench_table3_7to12.cc.o"
  "CMakeFiles/bench_table3_7to12.dir/bench_table3_7to12.cc.o.d"
  "bench_table3_7to12"
  "bench_table3_7to12.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_7to12.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
