# Empty compiler generated dependencies file for bench_kin.
# This may be replaced when dependencies are built.
