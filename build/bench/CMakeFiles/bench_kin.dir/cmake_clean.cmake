file(REMOVE_RECURSE
  "CMakeFiles/bench_kin.dir/bench_kin.cc.o"
  "CMakeFiles/bench_kin.dir/bench_kin.cc.o.d"
  "bench_kin"
  "bench_kin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
