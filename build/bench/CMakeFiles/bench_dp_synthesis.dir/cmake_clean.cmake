file(REMOVE_RECURSE
  "CMakeFiles/bench_dp_synthesis.dir/bench_dp_synthesis.cc.o"
  "CMakeFiles/bench_dp_synthesis.dir/bench_dp_synthesis.cc.o.d"
  "bench_dp_synthesis"
  "bench_dp_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
