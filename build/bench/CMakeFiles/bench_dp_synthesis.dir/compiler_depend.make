# Empty compiler generated dependencies file for bench_dp_synthesis.
# This may be replaced when dependencies are built.
