# Empty dependencies file for bench_iot.
# This may be replaced when dependencies are built.
