file(REMOVE_RECURSE
  "CMakeFiles/bench_iot.dir/bench_iot.cc.o"
  "CMakeFiles/bench_iot.dir/bench_iot.cc.o.d"
  "bench_iot"
  "bench_iot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
