file(REMOVE_RECURSE
  "CMakeFiles/bench_dp_aggregation.dir/bench_dp_aggregation.cc.o"
  "CMakeFiles/bench_dp_aggregation.dir/bench_dp_aggregation.cc.o.d"
  "bench_dp_aggregation"
  "bench_dp_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dp_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
