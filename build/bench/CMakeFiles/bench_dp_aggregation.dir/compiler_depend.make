# Empty compiler generated dependencies file for bench_dp_aggregation.
# This may be replaced when dependencies are built.
