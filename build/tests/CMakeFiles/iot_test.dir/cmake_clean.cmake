file(REMOVE_RECURSE
  "CMakeFiles/iot_test.dir/iot_test.cc.o"
  "CMakeFiles/iot_test.dir/iot_test.cc.o.d"
  "iot_test"
  "iot_test.pdb"
  "iot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
