# Empty compiler generated dependencies file for iot_test.
# This may be replaced when dependencies are built.
