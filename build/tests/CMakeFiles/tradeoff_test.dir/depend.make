# Empty dependencies file for tradeoff_test.
# This may be replaced when dependencies are built.
