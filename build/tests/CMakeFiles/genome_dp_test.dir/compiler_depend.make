# Empty compiler generated dependencies file for genome_dp_test.
# This may be replaced when dependencies are built.
