file(REMOVE_RECURSE
  "CMakeFiles/genome_dp_test.dir/genome_dp_test.cc.o"
  "CMakeFiles/genome_dp_test.dir/genome_dp_test.cc.o.d"
  "genome_dp_test"
  "genome_dp_test.pdb"
  "genome_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
