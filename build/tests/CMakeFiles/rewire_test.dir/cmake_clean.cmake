file(REMOVE_RECURSE
  "CMakeFiles/rewire_test.dir/rewire_test.cc.o"
  "CMakeFiles/rewire_test.dir/rewire_test.cc.o.d"
  "rewire_test"
  "rewire_test.pdb"
  "rewire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
