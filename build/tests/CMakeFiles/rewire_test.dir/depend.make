# Empty dependencies file for rewire_test.
# This may be replaced when dependencies are built.
