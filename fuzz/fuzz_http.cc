// Fuzz surface: ParseHttpRequestHead in obs/http.cc — the single parser
// behind both the telemetry server and ppdp_serve. Arbitrary header bytes
// must yield either a parsed head or kInvalidArgument; any accepted head
// must have a non-empty method and path (the routing table indexes on
// both), and an accepted Content-Length must round-trip the flag.

#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "obs/http.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view head(reinterpret_cast<const char*>(data), size);
  ppdp::Result<ppdp::obs::HttpRequestHead> parsed = ppdp::obs::ParseHttpRequestHead(head);
  if (!parsed.ok()) return 0;
  if (parsed->method.empty() || parsed->path.empty()) std::abort();
  if (!parsed->has_content_length && parsed->content_length != 0) std::abort();
  return 0;
}
