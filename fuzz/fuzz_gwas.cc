// Fuzz surface: the GWAS catalog CSV reader. ParseGwasCatalog is the
// validation layer between hostile background-knowledge files and the
// PPDP_CHECK-guarded GwasCatalog setters — every malformed row (bad index,
// out-of-range prevalence/RAF/odds/correlation, oversized panel header)
// must come back as kInvalidArgument, never an abort or an allocation
// driven by unvalidated input. Accepted catalogs then exercise the index
// accessors the chapter-5 attack pipeline reads.

#include <cstdint>
#include <string>

#include "genomics/genome_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  auto catalog = ppdp::genomics::ParseGwasCatalog(input);
  if (!catalog.ok()) return 0;

  // Everything below is valid by construction; touching it verifies the
  // parser's invariants (indices in range, per-SNP tables sized) hold.
  for (size_t snp = 0; snp < catalog->num_snps() && snp < 64; ++snp) {
    (void)catalog->BackgroundRaf(snp);
    (void)catalog->AssociationsOfSnp(snp);
  }
  for (size_t trait = 0; trait < catalog->num_traits(); ++trait) {
    (void)catalog->AssociationsOfTrait(trait);
  }
  for (const auto& pair : catalog->ld_pairs()) {
    (void)catalog->BackgroundRaf(pair.a);
    (void)catalog->BackgroundRaf(pair.b);
  }
  return 0;
}
