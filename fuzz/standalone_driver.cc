// Standalone replacement for libFuzzer's driver, linked when PPDP_FUZZ is
// OFF (the container toolchain is gcc-only; libFuzzer needs clang). It is
// not coverage-guided: it replays every corpus file verbatim, then runs a
// fixed number of deterministically mutated variants (Rng-seeded bit
// flips, byte splices, truncations) of random corpus picks. That is enough
// for the ctest smoke tier — any crash in a parser is a real bug — while
// the CI fuzz job builds the same LLVMFuzzerTestOneInput entry points with
// clang for real coverage-guided runs.
//
// Usage: harness [--iterations=N] [--seed=S] <corpus file or dir>...

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

using Input = std::vector<uint8_t>;

bool ReadFile(const std::string& path, Input* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

void CollectInputs(const std::string& path, std::vector<Input>* corpus) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "fuzz: cannot stat %s\n", path.c_str());
    std::exit(1);
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      std::fprintf(stderr, "fuzz: cannot open dir %s\n", path.c_str());
      std::exit(1);
    }
    // Sort entries so the mutation stream is independent of readdir order.
    std::vector<std::string> names;
    while (dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] == '.') continue;
      names.push_back(path + "/" + entry->d_name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    for (const auto& name : names) CollectInputs(name, corpus);
    return;
  }
  Input bytes;
  if (!ReadFile(path, &bytes)) {
    std::fprintf(stderr, "fuzz: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  corpus->push_back(std::move(bytes));
}

Input Mutate(const Input& base, ppdp::Rng& rng) {
  Input m = base;
  const uint64_t rounds = 1 + rng.Uniform(4);
  for (uint64_t r = 0; r < rounds; ++r) {
    switch (rng.Uniform(5)) {
      case 0:  // flip one bit
        if (!m.empty()) m[rng.Uniform(m.size())] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
        break;
      case 1:  // overwrite a byte with anything
        if (!m.empty()) m[rng.Uniform(m.size())] = static_cast<uint8_t>(rng.Uniform(256));
        break;
      case 2:  // insert a byte
        m.insert(m.begin() + static_cast<long>(rng.Uniform(m.size() + 1)),
                 static_cast<uint8_t>(rng.Uniform(256)));
        break;
      case 3:  // delete a byte
        if (!m.empty()) m.erase(m.begin() + static_cast<long>(rng.Uniform(m.size())));
        break;
      case 4:  // truncate
        if (!m.empty()) m.resize(rng.Uniform(m.size()));
        break;
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iterations = 1000;
  uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iterations=", 0) == 0) {
      iterations = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "fuzz: unknown flag %s\n", arg.c_str());
      return 1;
    } else {
      paths.push_back(arg);
    }
  }

  std::vector<Input> corpus;
  for (const auto& path : paths) CollectInputs(path, &corpus);
  if (corpus.empty()) {
    std::fprintf(stderr, "fuzz: no corpus inputs given\n");
    return 1;
  }

  for (const auto& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
  }

  ppdp::Rng rng(seed);
  for (uint64_t i = 0; i < iterations; ++i) {
    const Input mutated = Mutate(corpus[rng.Uniform(corpus.size())], rng);
    LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
  }

  std::printf("fuzz: %zu corpus inputs + %llu mutated runs, 0 crashes\n", corpus.size(),
              static_cast<unsigned long long>(iterations));
  return 0;
}
