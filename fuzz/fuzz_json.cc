// Fuzz surface: common/json.cc. Every byte string must either parse or
// come back as a Status — never crash, never hang. Documents that do parse
// must survive a Dump/re-Parse round trip and reach a dump fixed point
// (Dump(Parse(Dump(v))) == Dump(v)); a violation means the printer and the
// parser disagree about the grammar, which is exactly the class of bug a
// durable-log reader cannot tolerate.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  ppdp::Result<ppdp::JsonValue> parsed = ppdp::JsonValue::Parse(text);
  if (!parsed.ok()) return 0;

  const std::string dumped = parsed->Dump();
  ppdp::Result<ppdp::JsonValue> reparsed = ppdp::JsonValue::Parse(dumped);
  if (!reparsed.ok()) std::abort();       // printer emitted an unparseable doc
  if (reparsed->Dump() != dumped) std::abort();  // no dump fixed point
  return 0;
}
