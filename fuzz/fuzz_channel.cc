// Fuzz surface: the IoT channel's frame path. The input is treated as a
// stream of fixed-size wire frames and pushed through the same sequence the
// receiver endpoint runs — DecodeEnvelope (structural), EnvelopeChecksum
// (integrity), sequence dedup — which must survive arbitrary bytes without
// crashing. Frames that decode must re-encode byte-identically (the codec's
// round-trip invariant); a mismatch traps so the fuzzer reports it.

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "iot/channel.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  // Whole-buffer decode: exercises the wrong-size rejection path.
  (void)ppdp::iot::DecodeEnvelope(input);

  std::set<uint64_t> seen;
  for (size_t offset = 0; offset + ppdp::iot::kEnvelopeWireBytes <= input.size();
       offset += ppdp::iot::kEnvelopeWireBytes) {
    const std::string_view frame = input.substr(offset, ppdp::iot::kEnvelopeWireBytes);
    auto envelope = ppdp::iot::DecodeEnvelope(frame);
    if (!envelope.ok()) continue;
    if (ppdp::iot::EncodeEnvelope(*envelope) != frame) __builtin_trap();
    if (ppdp::iot::EnvelopeChecksum(*envelope) != envelope->checksum) continue;
    if (!seen.insert(envelope->seq).second) continue;  // dedup hit
  }
  return 0;
}
