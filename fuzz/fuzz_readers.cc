// Fuzz surface: the CSV reader and the graph loader built on it. The input
// is interpreted two ways:
//   1. the whole buffer through ParseCsv — the raw grammar;
//   2. split on the first two NUL bytes into (schema, nodes, edges) CSV
//      documents through ParseGraphCsv — the semantic validation layer that
//      must turn every hostile row into kInvalidArgument before it can
//      reach a PPDP_CHECK abort inside SocialGraph.

#include <cstdint>
#include <string>

#include "common/csv.h"
#include "graph/graph_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  (void)ppdp::ParseCsv(input);

  const size_t first = input.find('\0');
  const size_t second = first == std::string::npos ? std::string::npos : input.find('\0', first + 1);
  std::string schema = input.substr(0, first);
  std::string nodes =
      first == std::string::npos ? std::string() : input.substr(first + 1, second - first - 1);
  std::string edges = second == std::string::npos ? std::string() : input.substr(second + 1);
  (void)ppdp::graph::ParseGraphCsv(schema, nodes, edges);
  return 0;
}
